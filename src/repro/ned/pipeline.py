"""The NED pipeline: prior-only, local, and graph-coherence methods.

This is the comparison E9 runs — the canonical result shape of the NED
literature the tutorial surveys:

* ``prior`` — always the most popular candidate of the surface form;
* ``local`` — prior combined with keyphrase context similarity;
* ``graph`` — local scores plus joint coherence via the greedy
  dense-subgraph reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kb import Entity
from ..corpus.document import Document
from ..corpus.wiki import Wiki
from ..obs import core as _obs
from .candidates import CandidateDictionary, dictionary_from_wiki
from .context import EntityContextIndex
from .coherence import CoherenceIndex

METHODS = ("prior", "local", "graph")


@dataclass(frozen=True, slots=True)
class NEDConfig:
    """Score combination weights."""

    prior_weight: float = 0.4
    similarity_weight: float = 0.6
    coherence_weight: float = 1.2
    max_candidates: int = 8


@dataclass(frozen=True, slots=True)
class MentionTask:
    """One mention to disambiguate within a document context."""

    mention_id: object
    surface: str


class NEDSystem:
    """A complete NED system derived from an encyclopedia."""

    def __init__(
        self,
        wiki: Wiki,
        aliases: Optional[dict[Entity, list[str]]] = None,
        config: Optional[NEDConfig] = None,
    ) -> None:
        self.config = config if config is not None else NEDConfig()
        self.dictionary: CandidateDictionary = dictionary_from_wiki(wiki, aliases)
        self.context_index = EntityContextIndex(wiki)
        self.coherence_index = CoherenceIndex(wiki)

    # ------------------------------------------------------------- scoring

    def _scored_candidates(
        self,
        surface: str,
        context_words: list[str],
        method: str,
        memo: Optional[dict[str, list[tuple[Entity, float]]]] = None,
    ) -> list[tuple[Entity, float]]:
        # ``memo`` batches scoring across one document's mentions: the
        # score depends only on (surface, method, context), and context is
        # fixed per document — repeated surfaces (a page mentions its
        # subject many times) score once instead of once per mention.
        if memo is not None and surface in memo:
            if _obs.ENABLED:
                _obs.count("ned.surface_cache_hits")
            return memo[surface]
        candidates = self.dictionary.candidates(surface)[: self.config.max_candidates]
        scored = []
        for candidate in candidates:
            score = self.config.prior_weight * candidate.prior
            if method != "prior":
                similarity = self.context_index.similarity(
                    candidate.entity, context_words
                )
                score += self.config.similarity_weight * similarity
            scored.append((candidate.entity, score))
        if _obs.ENABLED:
            _obs.count("ned.candidates_scored", len(scored))
        if memo is not None:
            memo[surface] = scored
        return scored

    # --------------------------------------------------------------- solve

    def disambiguate(
        self,
        tasks: list[MentionTask],
        context_text: str,
        method: str = "graph",
    ) -> dict[object, Optional[Entity]]:
        """Resolve each mention of one document; returns id -> entity."""
        if method not in METHODS:
            raise ValueError(f"unknown NED method: {method!r}")
        with _obs.span("ned.disambiguate") as tracing:
            if _obs.ENABLED:
                tracing.add("mentions", len(tasks))
                _obs.count("ned.mentions", len(tasks))
                _obs.count(f"ned.mentions.{method}", len(tasks))
            context_words = self.context_index.context_of(context_text)
            memo: dict[str, list[tuple[Entity, float]]] = {}

            if method in ("prior", "local"):
                result: dict[object, Optional[Entity]] = {}
                for task in tasks:
                    scored = self._scored_candidates(
                        task.surface, context_words, method, memo
                    )
                    result[task.mention_id] = (
                        max(scored, key=lambda pair: (pair[1], pair[0].id))[0]
                        if scored
                        else None
                    )
                return result

            from .graph import DisambiguationGraph

            graph = DisambiguationGraph(
                coherence_weight=self.config.coherence_weight
            )
            all_candidates: set[Entity] = set()
            for task in tasks:
                scored = self._scored_candidates(
                    task.surface, context_words, "local", memo
                )
                graph.add_mention(task.mention_id, task.surface, scored)
                all_candidates |= {entity for entity, __ in scored}
            ordered = sorted(all_candidates, key=lambda e: e.id)
            coherence_edges = 0
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    relatedness = self.coherence_index.relatedness(a, b)
                    if relatedness > 0.0:
                        graph.add_entity_edge(a, b, relatedness)
                        coherence_edges += 1
            if _obs.ENABLED:
                tracing.add("coherence_edges", coherence_edges)
            return graph.solve()

    def disambiguate_document(
        self, document: Document, method: str = "graph"
    ) -> dict[object, Optional[Entity]]:
        """Disambiguate a gold-annotated document's mentions.

        Mention ids are (sentence index, mention start) pairs; evaluation
        compares against each gold mention's entity.
        """
        tasks = []
        for s_index, sentence in enumerate(document.sentences):
            for mention in sentence.mentions:
                tasks.append(MentionTask((s_index, mention.start), mention.surface))
        return self.disambiguate(tasks, document.text, method=method)


def evaluate_document(
    system: NEDSystem, document: Document, method: str
) -> tuple[int, int]:
    """(correct, total) over a document's gold mentions."""
    predictions = system.disambiguate_document(document, method=method)
    correct = 0
    total = 0
    for s_index, sentence in enumerate(document.sentences):
        for mention in sentence.mentions:
            total += 1
            if predictions.get((s_index, mention.start)) == mention.entity:
                correct += 1
    return correct, total
