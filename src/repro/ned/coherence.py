"""Entity-entity coherence from the encyclopedia link graph.

Joint disambiguation rests on the observation that the entities of one
document tend to be related.  The standard relatedness measure is
Milne-Witten (normalized Google distance over in-link sets): two entities
are related in proportion to the overlap of the pages linking to them.
"""

from __future__ import annotations

import math
from collections import defaultdict

from ..kb import Entity
from ..corpus.wiki import Wiki


class CoherenceIndex:
    """Milne-Witten relatedness over the wiki's in-link sets."""

    def __init__(
        self,
        wiki: Wiki,
        use_outlinks: bool = True,
        direct_link_floor: float = 0.7,
    ) -> None:
        """``use_outlinks`` merges out-links into each link set — the usual
        densification on small graphs (full Wikipedia can afford in-only).
        ``direct_link_floor`` is the minimum relatedness of two pages that
        link to each other: Milne-Witten is second-order (common
        neighbours), so without the floor a company and its headquarters
        city — directly linked but sharing no third neighbour — would score
        zero."""
        links: dict[str, set[str]] = defaultdict(set)
        adjacency: dict[str, set[str]] = defaultdict(set)
        for title, page in wiki.pages.items():
            for target in page.links:
                if target not in wiki.pages:
                    continue
                links[target].add(title)
                adjacency[title].add(target)
                adjacency[target].add(title)
                if use_outlinks:
                    links[title].add(target)
        self._inlinks: dict[Entity, frozenset] = {
            page.entity: frozenset(links.get(title, ()))
            for title, page in wiki.pages.items()
        }
        self._adjacent: dict[Entity, frozenset] = {
            page.entity: frozenset(adjacency.get(title, ()))
            for title, page in wiki.pages.items()
        }
        self._title_of: dict[Entity, str] = {
            page.entity: title for title, page in wiki.pages.items()
        }
        self._total_pages = max(len(wiki.pages), 2)
        self.direct_link_floor = direct_link_floor

    def relatedness(self, a: Entity, b: Entity) -> float:
        """Milne-Witten relatedness in [0, 1], floored for direct links."""
        if a == b:
            return 1.0
        direct = 0.0
        title_b = self._title_of.get(b)
        if title_b is not None and title_b in self._adjacent.get(a, frozenset()):
            direct = self.direct_link_floor
        links_a = self._inlinks.get(a, frozenset())
        links_b = self._inlinks.get(b, frozenset())
        common = len(links_a & links_b)
        if common == 0 or not links_a or not links_b:
            return direct
        larger = max(len(links_a), len(links_b))
        smaller = min(len(links_a), len(links_b))
        distance = (math.log(larger) - math.log(common)) / (
            math.log(self._total_pages) - math.log(smaller)
        )
        return max(direct, 1.0 - distance, 0.0)

    def average_coherence(self, entity: Entity, others: list[Entity]) -> float:
        """Mean relatedness of an entity to a set of context entities."""
        others = [e for e in others if e != entity]
        if not others:
            return 0.0
        return sum(self.relatedness(entity, other) for other in others) / len(others)
