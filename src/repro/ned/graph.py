"""Joint disambiguation by greedy dense-subgraph search (the AIDA recipe).

Build a weighted graph with one node per mention and one per candidate
entity; mention-entity edges combine prior and context similarity,
entity-entity edges carry coherence.  Then greedily remove the entity
whose *weighted degree* is smallest — keeping at least one candidate per
mention — until no removable entity remains; the surviving candidate with
the best local score wins each mention.  The greedy density objective is
what lets one confidently-identified entity pull its related, individually
ambiguous neighbours to the right reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from ..kb import Entity


@dataclass(slots=True)
class MentionNode:
    """One mention to disambiguate."""

    mention_id: Hashable
    surface: str
    candidates: list[Entity] = field(default_factory=list)
    local_scores: dict[Entity, float] = field(default_factory=dict)


class DisambiguationGraph:
    """The mention-entity graph and its greedy reduction."""

    def __init__(self, coherence_weight: float = 1.0) -> None:
        self.coherence_weight = coherence_weight
        self.mentions: list[MentionNode] = []
        self._entity_edges: dict[tuple[Entity, Entity], float] = {}

    def add_mention(
        self, mention_id: Hashable, surface: str, scored_candidates: list[tuple[Entity, float]]
    ) -> None:
        """Register a mention with (entity, local score) candidates."""
        node = MentionNode(mention_id, surface)
        for entity, score in scored_candidates:
            node.candidates.append(entity)
            node.local_scores[entity] = score
        self.mentions.append(node)

    def add_entity_edge(self, a: Entity, b: Entity, weight: float) -> None:
        """Register coherence between two candidate entities."""
        if a == b or weight <= 0.0:
            return
        key = (a, b) if a.id <= b.id else (b, a)
        self._entity_edges[key] = max(self._entity_edges.get(key, 0.0), weight)

    # -------------------------------------------------------------- solving

    def solve(self) -> dict[Hashable, Optional[Entity]]:
        """Greedy dense-subgraph reduction; returns mention -> entity."""
        alive: set[Entity] = set()
        mentions_of: dict[Entity, set[int]] = {}
        for index, node in enumerate(self.mentions):
            alive |= set(node.candidates)
            for candidate in node.candidates:
                mentions_of.setdefault(candidate, set()).add(index)

        def weighted_degree(entity: Entity) -> float:
            degree = 0.0
            for node in self.mentions:
                if entity in node.local_scores:
                    degree += node.local_scores[entity]
            my_mentions = mentions_of.get(entity, set())
            for (a, b), weight in self._entity_edges.items():
                if a != entity and b != entity:
                    continue
                other = b if a == entity else a
                if other not in alive:
                    continue
                # Coherence only counts across mentions: rival candidates
                # of the same mention must not prop each other up.
                other_mentions = mentions_of.get(other, set())
                if other_mentions and other_mentions <= my_mentions:
                    continue
                degree += self.coherence_weight * weight
            return degree

        # An entity is removable while every mention listing it keeps
        # another living candidate.
        def removable(entity: Entity) -> bool:
            for node in self.mentions:
                if entity in node.local_scores:
                    living = [c for c in node.candidates if c in alive]
                    if living == [entity]:
                        return False
            return True

        while True:
            candidates = sorted(
                (e for e in alive if removable(e)),
                key=lambda e: (weighted_degree(e), e.id),
            )
            if not candidates:
                break
            weakest = candidates[0]
            # Stop when every mention is already unambiguous.
            if all(
                len([c for c in node.candidates if c in alive]) <= 1
                for node in self.mentions
            ):
                break
            alive.discard(weakest)

        def edge(a: Entity, b: Entity) -> float:
            key = (a, b) if a.id <= b.id else (b, a)
            return self._entity_edges.get(key, 0.0)

        result: dict[Hashable, Optional[Entity]] = {}
        for index, node in enumerate(self.mentions):
            living = [c for c in node.candidates if c in alive]
            if not living:
                living = node.candidates
            if not living:
                result[node.mention_id] = None
                continue

            def final_score(entity: Entity) -> float:
                score = node.local_scores.get(entity, 0.0)
                support = 0.0
                for other_index, other_node in enumerate(self.mentions):
                    if other_index == index:
                        continue
                    other_living = [
                        c for c in other_node.candidates if c in alive and c != entity
                    ]
                    if other_living:
                        support += max(edge(entity, c) for c in other_living)
                return score + self.coherence_weight * support

            result[node.mention_id] = max(
                living, key=lambda e: (final_score(e), e.id)
            )
        return result
