"""Hash-seed-independent hashing and canonical iteration helpers.

Python salts ``hash()`` per process (``PYTHONHASHSEED``), so anything that
reaches KB output, RNG consumption, or shard partitioning must never depend
on builtin hashes or on ``set``/``frozenset`` iteration order.  This module
is the single home of the replacements:

* :func:`stable_hash` — a deterministic 64-bit hash (blake2b), the only
  hash allowed for partitioning, feature hashing, and sharding;
* :func:`stable_str_key` — a canonical string sort key for heterogeneous
  values (entities, relations, tuples of them);
* :func:`sorted_items` / :func:`sorted_set` — canonical-iteration wrappers
  that make the ordering decision explicit at the call site;
* :func:`canonical_kb_lines` / :func:`canonical_kb_text` — the canonical
  serialization of a triple store (sorted triple lines including
  confidence, source provenance, and temporal scope) that the determinism
  harness byte-compares across processes.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable, Mapping, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")
T = TypeVar("T")


def stable_hash(value: Any) -> int:
    """A deterministic 64-bit hash, independent of ``PYTHONHASHSEED``.

    Strings hash their UTF-8 bytes; any other value hashes its ``repr``.
    Use this — never builtin ``hash()`` — for anything that decides output
    content, iteration order, or shard assignment.
    """
    text = value if isinstance(value, str) else repr(value)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def stable_str_key(value: Any) -> str:
    """A canonical string sort key for heterogeneous values.

    Strings sort as themselves; everything else sorts by ``repr``, which is
    stable for the toolkit's value types (entities, relations, literals,
    tuples thereof) because none of them embed memory addresses.
    """
    return value if isinstance(value, str) else repr(value)


def sorted_items(
    mapping: Mapping[K, V], key: Optional[Callable[[K], Any]] = None
) -> list[tuple[K, V]]:
    """The mapping's items sorted by canonical key order.

    Use when a dict's *content* order matters (it was filled from unordered
    sources) and the iteration feeds output or an RNG.
    """
    key = key or stable_str_key
    return sorted(mapping.items(), key=lambda kv: key(kv[0]))


def sorted_set(
    values: Iterable[T], key: Optional[Callable[[T], Any]] = None
) -> list[T]:
    """A set (or any iterable) as a canonically sorted list.

    The explicit way to iterate a ``set``/``frozenset`` deterministically;
    the unordered-iteration lint recognizes this wrapper as safe.
    """
    return sorted(values, key=key or stable_str_key)


def canonical_kb_lines(store: Iterable) -> list[str]:
    """The canonical line serialization of a triple store.

    One line per triple in the rdfio line format (subject, predicate,
    object, confidence, source, scope), sorted lexicographically — the
    byte-comparable form two builds of the same KB must agree on.
    """
    from ..kb.rdfio import triple_to_line

    return sorted(triple_to_line(triple) for triple in store)


def canonical_kb_text(store: Iterable) -> str:
    """The canonical serialization as one newline-terminated string."""
    lines = canonical_kb_lines(store)
    return "\n".join(lines) + ("\n" if lines else "")
