"""The cross-process determinism harness.

The KB pipeline's contract is that ``repro build --seed S`` produces the
same knowledge base in *every* process.  The one thing a single-process
test cannot catch is Python's per-process hash randomization leaking into
iteration order, so this harness runs the build N times in fresh
subprocesses, each under a distinct ``PYTHONHASHSEED``, canonically
serializes every resulting KB (sorted triples with confidence, provenance,
and temporal scope — :func:`repro.determinism.stable.canonical_kb_lines`),
and byte-compares the serializations.  On divergence it reports the first
differing triple together with the pipeline stage that produced it, so the
leak can be bisected straight to a subsystem.

The cross-mode check (:func:`check_cross_mode`) extends the same contract
across *execution strategies*: serial, sharded map-reduce, thread-pool,
and process-pool builds of the same world — for the extraction stage and
for the component-decomposed consistency reasoner alike — must also agree
byte for byte.
Each mode still runs in a fresh subprocess under its own
``PYTHONHASHSEED``, so a pass certifies both properties at once.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .stable import canonical_kb_lines

#: Triple provenance (the ``src=`` annotation) -> producing pipeline stage,
#: matching the ``repro.obs`` span names of the build pipeline.
_SOURCE_TO_STAGE = {
    "infobox": "pipeline.extract.infobox",
    "surface-patterns": "pipeline.extract.sentences",
    "year-attributes": "pipeline.extract.sentences",
}


@dataclass(frozen=True, slots=True)
class Divergence:
    """The first point where two runs' canonical serializations differ."""

    run_a: int                  # PYTHONHASHSEED of the reference run
    run_b: int                  # PYTHONHASHSEED of the diverging run
    line_a: Optional[str]       # triple present at the position in run A
    line_b: Optional[str]       # triple present at the position in run B
    stage: str                  # best-effort producing pipeline stage

    def describe(self) -> str:
        parts = [
            f"runs PYTHONHASHSEED={self.run_a} and PYTHONHASHSEED={self.run_b} "
            f"diverge (stage: {self.stage})"
        ]
        if self.line_a is not None:
            parts.append(f"  only/first in run {self.run_a}: {self.line_a}")
        if self.line_b is not None:
            parts.append(f"  only/first in run {self.run_b}: {self.line_b}")
        return "\n".join(parts)


@dataclass(slots=True)
class DeterminismReport:
    """Outcome of a multi-process determinism check."""

    ok: bool
    runs: int
    hash_seeds: list[int] = field(default_factory=list)
    triples: int = 0
    divergence: Optional[Divergence] = None
    build_args: list[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return (
                f"deterministic: {self.runs} subprocess builds "
                f"(PYTHONHASHSEED={self.hash_seeds}) produced byte-identical "
                f"canonical KBs ({self.triples} triples)"
            )
        assert self.divergence is not None
        return "NOT deterministic:\n" + self.divergence.describe()


def stage_of_line(line: Optional[str]) -> str:
    """Best-effort producing stage of one canonical triple line.

    Extraction triples carry their extractor in the ``src=`` annotation;
    taxonomy and label triples are recognized by predicate.  This is the
    provenance-based bisection over the PR-1 ``repro.obs`` stage breakdown.
    """
    if line is None:
        return "unknown"
    source = None
    if " # " in line:
        for item in line.rsplit(" # ", 1)[1].split():
            key, __, value = item.partition("=")
            if key == "src":
                source = value
    if source in _SOURCE_TO_STAGE:
        return _SOURCE_TO_STAGE[source]
    if "<<rdf:type>>" in line or "<<rdfs:subClassOf>>" in line:
        return "pipeline.taxonomy"
    if "<<rdfs:label>>" in line:
        return "pipeline.multilingual"
    if "<<skos:prefLabel>>" in line:
        return "pipeline.labels"
    if source is not None:
        # Label triples harvested from pages use the page title as source.
        return "pipeline.multilingual"
    return "pipeline (schema or unattributed)"


def first_divergence(
    lines_a: list[str], lines_b: list[str], run_a: int, run_b: int
) -> Divergence:
    """Locate the first differing canonical line between two runs."""
    for a, b in zip(lines_a, lines_b):
        if a != b:
            return Divergence(run_a, run_b, a, b, stage_of_line(min(a, b)))
    # One serialization is a strict prefix of the other.
    if len(lines_a) > len(lines_b):
        extra = lines_a[len(lines_b)]
        return Divergence(run_a, run_b, extra, None, stage_of_line(extra))
    extra = lines_b[len(lines_a)]
    return Divergence(run_a, run_b, None, extra, stage_of_line(extra))


def _build_once(
    hash_seed: int,
    out_path: str,
    seed: int,
    people: int,
    shards: Optional[int],
    timeout: float,
    workers: int = 0,
    backend: Optional[str] = None,
    reasoner_workers: int = 0,
    reasoner_backend: Optional[str] = None,
    schedule: Optional[str] = None,
    segments_dir: Optional[str] = None,
    corpus_transport: Optional[str] = None,
) -> list[str]:
    """Run one ``repro build`` in a fresh subprocess; return canonical lines."""
    from ..kb.rdfio import load

    command = [
        sys.executable, "-m", "repro", "build",
        "--seed", str(seed), "--people", str(people), "--out", out_path,
    ]
    if segments_dir is not None:
        command += ["--segments", segments_dir]
    if shards is not None:
        command += ["--shards", str(shards)]
    if workers:
        command += ["--workers", str(workers)]
    if backend is not None:
        command += ["--backend", backend]
    if reasoner_workers:
        command += ["--reasoner-workers", str(reasoner_workers)]
    if reasoner_backend is not None:
        command += ["--reasoner-backend", reasoner_backend]
    if schedule is not None:
        command += ["--schedule", schedule]
    if corpus_transport is not None:
        command += ["--corpus-transport", corpus_transport]
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    # The subprocess must resolve the same ``repro`` package as this one.
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=timeout
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"build under PYTHONHASHSEED={hash_seed} failed "
            f"(exit {completed.returncode}):\n{completed.stderr}"
        )
    return canonical_kb_lines(load(out_path))


def check_determinism(
    runs: int = 3,
    seed: int = 7,
    people: int = 40,
    shards: Optional[int] = None,
    hash_seeds: Optional[Sequence[int]] = None,
    timeout: float = 600.0,
) -> DeterminismReport:
    """Build the KB ``runs`` times under distinct hash seeds and compare.

    Returns a report; ``report.ok`` is True iff every run's canonical
    serialization is byte-identical to the first run's.
    """
    if runs < 2:
        raise ValueError("a determinism check needs at least 2 runs")
    seeds = list(hash_seeds) if hash_seeds is not None else list(range(runs))
    if len(seeds) != runs:
        raise ValueError("hash_seeds must provide one value per run")
    if len(set(seeds)) != len(seeds):
        raise ValueError("hash_seeds must be distinct")

    build_args = ["--seed", str(seed), "--people", str(people)]
    if shards is not None:
        build_args += ["--shards", str(shards)]
    report = DeterminismReport(
        ok=True, runs=runs, hash_seeds=seeds, build_args=build_args
    )
    reference: Optional[list[str]] = None
    with tempfile.TemporaryDirectory(prefix="repro-determinism-") as tmp:
        for index, hash_seed in enumerate(seeds):
            out_path = os.path.join(tmp, f"kb_{hash_seed}.nt")
            lines = _build_once(
                hash_seed, out_path, seed, people, shards, timeout
            )
            if reference is None:
                reference = lines
                report.triples = len(lines)
                continue
            if lines != reference:
                report.ok = False
                report.divergence = first_divergence(
                    reference, lines, seeds[0], hash_seed
                )
                return report
    return report


# ------------------------------------------------------ cross-mode checking


@dataclass(frozen=True, slots=True)
class BuildMode:
    """One execution strategy of the same logical build."""

    label: str
    shards: Optional[int] = None
    workers: int = 0
    backend: Optional[str] = None
    reasoner_workers: int = 0
    reasoner_backend: Optional[str] = None
    schedule: Optional[str] = None
    corpus_transport: Optional[str] = None


#: The default mode matrix: every execution strategy the pipeline offers,
#: including the component-decomposed parallel consistency reasoner, the
#: work-stealing dispatch schedule (which the steal modes exercise for
#: extraction and reasoning at once, over one shared worker pool), and the
#: segment-backed zero-copy corpus transport — workers reading pages from
#: a shared corpus file must produce the same bytes as workers holding the
#: whole Wiki in memory, under static and stealing dispatch alike.
CROSS_MODES: tuple[BuildMode, ...] = (
    BuildMode("serial"),
    BuildMode("shards4", shards=4),
    BuildMode("thread2", workers=2, backend="thread"),
    BuildMode("process2", workers=2, backend="process"),
    BuildMode("reasoner-thread2", reasoner_workers=2, reasoner_backend="thread"),
    BuildMode("reasoner-process2", reasoner_workers=2, reasoner_backend="process"),
    BuildMode(
        "steal-thread2",
        workers=2, backend="thread",
        reasoner_workers=2, reasoner_backend="thread",
        schedule="steal",
    ),
    BuildMode(
        "steal-process2",
        workers=2, backend="process",
        reasoner_workers=2, reasoner_backend="process",
        schedule="steal",
    ),
    BuildMode(
        "corpus-thread2",
        workers=2, backend="thread", corpus_transport="file",
    ),
    BuildMode(
        "corpus-process2",
        workers=2, backend="process", corpus_transport="file",
    ),
    BuildMode(
        "steal-corpus-process2",
        workers=2, backend="process",
        schedule="steal", corpus_transport="file",
    ),
)


@dataclass(slots=True)
class CrossModeReport:
    """Outcome of a cross-execution-mode determinism check."""

    ok: bool
    modes: list[str] = field(default_factory=list)
    triples: int = 0
    diverging_mode: Optional[str] = None
    divergence: Optional[Divergence] = None

    def describe(self) -> str:
        if self.ok:
            return (
                f"cross-mode deterministic: {len(self.modes)} execution modes "
                f"({', '.join(self.modes)}) produced byte-identical canonical "
                f"KBs ({self.triples} triples)"
            )
        assert self.divergence is not None
        return (
            f"NOT cross-mode deterministic (mode {self.diverging_mode} "
            f"differs from {self.modes[0]}):\n" + self.divergence.describe()
        )


def check_cross_mode(
    seed: int = 7,
    people: int = 40,
    modes: Sequence[BuildMode] = CROSS_MODES,
    timeout: float = 600.0,
) -> CrossModeReport:
    """Build the same world under every execution mode and byte-compare.

    Each mode runs in a fresh subprocess under a distinct
    ``PYTHONHASHSEED`` (the mode's index), so this subsumes a 1-run-per-
    mode hash-seed check on top of the serial/sharded/parallel agreement.
    """
    if len(modes) < 2:
        raise ValueError("a cross-mode check needs at least 2 modes")
    report = CrossModeReport(ok=True, modes=[mode.label for mode in modes])
    reference: Optional[list[str]] = None
    with tempfile.TemporaryDirectory(prefix="repro-crossmode-") as tmp:
        for index, mode in enumerate(modes):
            out_path = os.path.join(tmp, f"kb_{mode.label}.nt")
            lines = _build_once(
                index, out_path, seed, people, mode.shards, timeout,
                workers=mode.workers, backend=mode.backend,
                reasoner_workers=mode.reasoner_workers,
                reasoner_backend=mode.reasoner_backend,
                schedule=mode.schedule,
                corpus_transport=mode.corpus_transport,
            )
            if reference is None:
                reference = lines
                report.triples = len(lines)
                continue
            if lines != reference:
                report.ok = False
                report.diverging_mode = mode.label
                report.divergence = first_divergence(
                    reference, lines, 0, index
                )
                return report
    return report


def check_cross_mode_fast(
    seed: int = 7,
    people: int = 40,
    modes: Sequence[BuildMode] = CROSS_MODES,
) -> CrossModeReport:
    """In-process cross-mode byte-identity check (no subprocess builds).

    The subprocess harness pays interpreter startup plus a full world
    generation *per mode*; this variant generates the world and Wiki once
    and runs :class:`~repro.pipeline.builder.KnowledgeBaseBuilder`
    directly for every mode, byte-comparing the canonical serializations.
    It cannot vary ``PYTHONHASHSEED`` (that needs fresh processes — use
    :func:`check_cross_mode` for the full certificate), but it exercises
    the identical execution strategies — thread/process pools, stealing
    dispatch, segment-backed corpus transport — at a fraction of the
    wall-clock, which is what CI smoke and tight edit loops want.
    """
    from ..corpus import build_wiki
    from ..pipeline import BuildConfig, KnowledgeBaseBuilder
    from ..world import WorldConfig, generate_world

    if len(modes) < 2:
        raise ValueError("a cross-mode check needs at least 2 modes")
    world = generate_world(WorldConfig(seed=seed, n_people=people))
    wiki = build_wiki(world)
    report = CrossModeReport(ok=True, modes=[mode.label for mode in modes])
    reference: Optional[list[str]] = None
    for index, mode in enumerate(modes):
        config = BuildConfig(
            mapreduce_shards=mode.shards,
            workers=mode.workers,
            backend=mode.backend if mode.backend is not None else "auto",
            reasoner_workers=mode.reasoner_workers,
            reasoner_backend=(
                mode.reasoner_backend
                if mode.reasoner_backend is not None
                else "auto"
            ),
            schedule=mode.schedule if mode.schedule is not None else "static",
            corpus_transport=(
                mode.corpus_transport
                if mode.corpus_transport is not None
                else "auto"
            ),
        )
        kb, __ = KnowledgeBaseBuilder(
            wiki, aliases=world.aliases, config=config
        ).build()
        lines = canonical_kb_lines(kb)
        if reference is None:
            reference = lines
            report.triples = len(lines)
            continue
        if lines != reference:
            report.ok = False
            report.diverging_mode = mode.label
            report.divergence = first_divergence(reference, lines, 0, index)
            return report
    return report


# --------------------------------------------------- segment file checking


#: Segment runs vary worker count *and* backend on top of the hash seed:
#: the byte-pin promise is "same world, same files, any execution mode".
SEGMENT_MODES: tuple[BuildMode, ...] = (
    BuildMode("serial"),
    BuildMode("thread2", workers=2, backend="thread"),
    BuildMode("process2", workers=2, backend="process"),
)


@dataclass(slots=True)
class SegmentDeterminismReport:
    """Outcome of a file-level segment determinism check.

    Unlike :class:`DeterminismReport`, which compares *canonical
    serializations* (order-insensitive by construction), this check
    compares the emitted segment **files byte for byte** — manifest,
    order files, and bloom sidecars — so it certifies the stronger
    property the byte-pinned format promises: two builds of the same
    world are the same files, at any worker count or backend.
    """

    ok: bool
    modes: list[str] = field(default_factory=list)
    triples: int = 0
    files: int = 0
    diverging_mode: Optional[str] = None
    differences: list[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return (
                f"segment-deterministic: {len(self.modes)} builds "
                f"({', '.join(self.modes)}) emitted byte-identical segment "
                f"files ({self.files} files, {self.triples} triples)"
            )
        lines = [
            f"NOT segment-deterministic (mode {self.diverging_mode} differs "
            f"from {self.modes[0]}):"
        ]
        lines += [f"  {difference}" for difference in self.differences]
        return "\n".join(lines)


def check_segment_determinism(
    seed: int = 7,
    people: int = 40,
    modes: Sequence[BuildMode] = SEGMENT_MODES,
    timeout: float = 600.0,
) -> SegmentDeterminismReport:
    """Build segments under several execution modes and diff the files.

    Each build runs ``repro build --segments`` in a fresh subprocess with
    a distinct ``PYTHONHASHSEED`` and its own output directory; the
    directories are then compared file-for-file (sha256) with
    :func:`repro.kb.segments.diff_segment_dirs`.
    """
    from ..kb.segments import MANIFEST_NAME, diff_segment_dirs

    if len(modes) < 2:
        raise ValueError("a segment determinism check needs at least 2 modes")
    report = SegmentDeterminismReport(ok=True, modes=[mode.label for mode in modes])
    with tempfile.TemporaryDirectory(prefix="repro-segments-") as tmp:
        reference_dir: Optional[str] = None
        for index, mode in enumerate(modes):
            segments_dir = os.path.join(tmp, f"segments_{mode.label}")
            out_path = os.path.join(tmp, f"kb_{mode.label}.nt")
            lines = _build_once(
                index, out_path, seed, people, mode.shards, timeout,
                workers=mode.workers, backend=mode.backend,
                reasoner_workers=mode.reasoner_workers,
                reasoner_backend=mode.reasoner_backend,
                schedule=mode.schedule, segments_dir=segments_dir,
            )
            if reference_dir is None:
                reference_dir = segments_dir
                report.triples = len(lines)
                report.files = sum(
                    1
                    for name in os.listdir(segments_dir)
                    if name == MANIFEST_NAME or name.startswith("seg-")
                )
                continue
            differences = diff_segment_dirs(reference_dir, segments_dir)
            if differences:
                report.ok = False
                report.diverging_mode = mode.label
                report.differences = differences
                return report
    return report


# ---------------------------------------------- incremental-build checking


#: The fact key the incremental check retracts: a schema triple, present
#: in every world, so the retraction deterministically exercises a
#: tombstone in the delta generation regardless of seed or size.
_RETRACTED_KEY = ("<cls:location>", "<<rdfs:subClassOf>>", "<kb:Thing>")


@dataclass(slots=True)
class IncrementalDeterminismReport:
    """Outcome of the incremental == full-rebuild byte-identity check.

    For each execution mode, the same corpus is built twice — once as two
    delta ingests (the second carrying a retraction, flushed with a
    tombstone, then compacted) and once as a single one-shot ingest — and
    the two segment directories are diffed file for file, plus the
    canonical KB serializations byte-compared.  The mode directories are
    then diffed against the first mode's, so a pass certifies
    ``incremental(full ∪ delta) == full_rebuild(full ∪ delta)`` across
    serial/threaded/process execution under distinct ``PYTHONHASHSEED``.
    """

    ok: bool
    modes: list[str] = field(default_factory=list)
    triples: int = 0
    files: int = 0
    tombstones: int = 0
    diverging_mode: Optional[str] = None
    differences: list[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return (
                f"incremental-deterministic: {len(self.modes)} modes "
                f"({', '.join(self.modes)}) — two-batch ingest + retraction "
                f"+ compaction is byte-identical to a one-shot rebuild "
                f"({self.files} files, {self.triples} triples, "
                f"{self.tombstones} tombstone(s) exercised)"
            )
        lines = [
            f"NOT incremental-deterministic (mode {self.diverging_mode}):"
        ]
        lines += [f"  {difference}" for difference in self.differences]
        return "\n".join(lines)


def _ingest_once(
    hash_seed: int,
    segments_dir: str,
    seed: int,
    people: int,
    timeout: float,
    mode: BuildMode,
    start: Optional[int] = None,
    upto: Optional[int] = None,
    retract: Sequence[Sequence[str]] = (),
    compact: bool = False,
) -> None:
    """Run one ``repro ingest`` in a fresh subprocess."""
    command = [
        sys.executable, "-m", "repro", "ingest",
        "--segments", segments_dir,
        "--seed", str(seed), "--people", str(people),
    ]
    if start is not None:
        command += ["--start", str(start)]
    if upto is not None:
        command += ["--upto", str(upto)]
    for key in retract:
        command += ["--retract", *key]
    if compact:
        command += ["--compact"]
    if mode.workers:
        command += ["--workers", str(mode.workers)]
    if mode.backend is not None:
        command += ["--backend", mode.backend]
    if mode.reasoner_workers:
        command += ["--reasoner-workers", str(mode.reasoner_workers)]
    if mode.reasoner_backend is not None:
        command += ["--reasoner-backend", mode.reasoner_backend]
    if mode.schedule is not None:
        command += ["--schedule", mode.schedule]
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=timeout
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"ingest under PYTHONHASHSEED={hash_seed} failed "
            f"(exit {completed.returncode}):\n{completed.stderr}"
        )


def check_incremental_determinism(
    seed: int = 7,
    people: int = 40,
    modes: Sequence[BuildMode] = SEGMENT_MODES,
    timeout: float = 600.0,
    delta_fraction: float = 0.2,
) -> IncrementalDeterminismReport:
    """Verify ``incremental == full-rebuild`` byte-identity per mode.

    For every mode (fresh subprocesses, ``PYTHONHASHSEED`` = mode index):

    1. ingest the first ``1 - delta_fraction`` of pages into directory A;
    2. ingest the rest as a delta carrying a retraction — then assert the
       delta generation holds at least one tombstone record;
    3. compact A to canonical form (erasing the tombstone);
    4. one-shot ingest *everything* (same retraction) into directory B;
    5. ``diff_segment_dirs(A, B)`` must be empty and the canonical KB
       serializations byte-identical — and A must equal the first mode's
       A, closing the loop across execution modes.
    """
    import json

    from ..kb.segments import (
        MANIFEST_NAME,
        SegmentStore,
        diff_segment_dirs,
        open_snapshot,
    )

    report = IncrementalDeterminismReport(
        ok=True, modes=[mode.label for mode in modes]
    )
    cut = _page_cut(seed, people, delta_fraction)
    with tempfile.TemporaryDirectory(prefix="repro-incremental-") as tmp:
        reference_dir: Optional[str] = None
        reference_lines: Optional[list[str]] = None
        for index, mode in enumerate(modes):
            incremental_dir = os.path.join(tmp, f"incremental_{mode.label}")
            oneshot_dir = os.path.join(tmp, f"oneshot_{mode.label}")
            _ingest_once(
                index, incremental_dir, seed, people, timeout, mode,
                upto=cut,
            )
            _ingest_once(
                index, incremental_dir, seed, people, timeout, mode,
                start=cut, retract=[_RETRACTED_KEY],
            )
            with open(os.path.join(incremental_dir, MANIFEST_NAME)) as handle:
                manifest = json.load(handle)
            tombstones = sum(
                entry.get("tombstones", 0) for entry in manifest["segments"]
            )
            if tombstones < 1:
                report.ok = False
                report.diverging_mode = mode.label
                report.differences = [
                    "the retraction delta produced no tombstone record"
                ]
                return report
            report.tombstones = max(report.tombstones, tombstones)
            # Compact in-process: pure file folding, content-deterministic.
            store = SegmentStore(incremental_dir)
            try:
                store.compact()
            finally:
                store.close()
            _ingest_once(
                index, oneshot_dir, seed, people, timeout, mode,
                retract=[_RETRACTED_KEY], compact=True,
            )
            differences = diff_segment_dirs(incremental_dir, oneshot_dir)
            if differences:
                report.ok = False
                report.diverging_mode = mode.label
                report.differences = [
                    "incremental vs one-shot: " + d for d in differences
                ]
                return report
            with open_snapshot(incremental_dir) as snapshot:
                lines = canonical_kb_lines(snapshot)
            if reference_dir is None:
                reference_dir, reference_lines = incremental_dir, lines
                report.triples = len(lines)
                report.files = sum(
                    1
                    for name in os.listdir(incremental_dir)
                    if name == MANIFEST_NAME or name.startswith("seg-")
                )
                continue
            differences = diff_segment_dirs(reference_dir, incremental_dir)
            if differences:
                report.ok = False
                report.diverging_mode = mode.label
                report.differences = [
                    f"vs mode {modes[0].label}: " + d for d in differences
                ]
                return report
            if lines != reference_lines:
                report.ok = False
                report.diverging_mode = mode.label
                report.differences = [
                    "canonical KB serialization differs: "
                    + first_divergence(reference_lines, lines, 0, index)
                    .describe()
                ]
                return report
    return report


def _page_cut(seed: int, people: int, delta_fraction: float) -> int:
    """Where the base/delta batch boundary falls in sorted title order.

    The world is regenerated here once (page counts are world-dependent)
    so the same cut is handed to every mode's subprocesses.
    """
    from ..corpus import build_wiki
    from ..world import WorldConfig, generate_world

    world = generate_world(WorldConfig(seed=seed, n_people=people))
    pages = len(build_wiki(world).pages)
    return max(1, int(pages * (1.0 - delta_fraction)))
