"""An AST lint that flags hash-order-dependent iteration.

Python's per-process hash randomization makes ``set``/``frozenset``
iteration order a function of ``PYTHONHASHSEED``.  Any such iteration whose
order *flows somewhere* — into a returned list, stored triples, RNG
consumption, shard assignment — is a cross-process nondeterminism bug.
This lint walks the source tree and flags:

* ``DET001`` — a ``for`` loop over a set-valued expression;
* ``DET002`` — a list/generator/dict comprehension over a set-valued
  expression (set comprehensions are exempt: they produce a set again);
* ``DET003`` — ``list()``/``tuple()``/``enumerate()``/``zip()`` directly
  materializing a set-valued expression;
* ``DET004`` — a call to builtin ``hash()`` (use
  :func:`repro.determinism.stable.stable_hash` instead);
* ``DET005`` — a parameter default constructed at ``def`` time
  (``config: BuildConfig = BuildConfig()``): the instance is built once at
  import and shared by every call, so later mutation — or a config class
  gaining mutable fields — silently couples callers.  Use a ``None``
  sentinel and construct inside the body.

Set-valuedness is inferred per scope: set literals and comprehensions,
``set()``/``frozenset()`` calls, set-operator expressions, ``set``-annotated
names and attributes, ``self.x = set(...)`` attributes, and a curated table
of set-returning methods in this codebase.  Iterations wrapped directly in
an order-insensitive reducer (``sorted``, ``sum``, ``min``, ``max``,
``len``, ``any``, ``all``, ``set``, ``frozenset``, ``sorted_set``) are not
flagged.

Genuinely order-insensitive sites are allowlisted **explicitly**, either
with an inline pragma comment::

    for title in titles:  # det: allow-unordered -- only membership counts

or an entry in :data:`ALLOWLIST` (``"<path suffix>:<line text fragment>"``).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from dataclasses import dataclass
from typing import Iterable, Optional

#: Inline pragma that silences every finding on its line.
PRAGMA = "det: allow-unordered"

#: Explicit allowlist: "path-suffix:substring of the flagged source line".
#: Prefer inline pragmas; use this only for files the lint runs over but
#: that cannot carry pragma comments (e.g. generated code).
ALLOWLIST: frozenset[str] = frozenset()

#: Calls whose result does not depend on argument iteration order.
ORDER_INSENSITIVE_CALLS = {
    "len", "sum", "min", "max", "any", "all", "sorted", "set", "frozenset",
    "sorted_set", "Counter",
}

#: Wrappers that re-materialize the unordered iterable as-is.
ORDER_PRESERVING_MATERIALIZERS = {"list", "tuple", "enumerate", "zip", "iter"}

#: Methods in this codebase known to return sets.
SET_RETURNING_METHODS = {
    "entities", "predicates", "true_variables", "link_targets",
    "lsh_candidate_pairs", "shingles",
}

#: Set methods that return sets regardless of receiver inference.
SET_COMBINATORS = {
    "union", "intersection", "difference", "symmetric_difference",
}


@dataclass(frozen=True, slots=True)
class Finding:
    """One flagged site."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


class _Scope:
    """Set-like name/attribute bindings visible in one function or module."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.names: set[str] = set(parent.names) if parent else set()
        self.attrs: set[str] = set(parent.attrs) if parent else set()
        self.non_set_names: set[str] = set()

    def bind(self, name: str, is_set: bool) -> None:
        if is_set:
            self.names.add(name)
            self.non_set_names.discard(name)
        else:
            self.names.discard(name)
            self.non_set_names.add(name)


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    """True for ``set[...]``, ``frozenset[...]``, ``Set[...]`` annotations."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Name):
        return node.id in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"Set", "FrozenSet", "AbstractSet"}
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text.startswith(("set[", "frozenset[", "Set[", "FrozenSet["))
    return False


class _FileLinter(ast.NodeVisitor):
    """Lint one parsed module."""

    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.source_lines = source_lines
        self.findings: list[Finding] = []
        self.scope = _Scope()
        self._exempt: set[int] = set()   # node ids inside safe reducers
        self._class_set_attrs: set[str] = set()

    # ------------------------------------------------------- set inference

    def _is_set_expr(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            if node.id in self.scope.non_set_names:
                return False
            return node.id in self.scope.names
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr in self.scope.attrs
            return False
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in SET_COMBINATORS:
                    return True
                if func.attr in SET_RETURNING_METHODS:
                    return True
                if func.attr == "copy" and self._is_set_expr(func.value):
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body) or self._is_set_expr(node.orelse)
        return False

    # ---------------------------------------------------------- allowlist

    def _allowed(self, node: ast.AST) -> bool:
        line_index = node.lineno - 1
        if 0 <= line_index < len(self.source_lines):
            text = self.source_lines[line_index]
            if PRAGMA in text:
                return True
            for entry in ALLOWLIST:  # det: allow-unordered -- boolean any() over entries
                suffix, __, fragment = entry.partition(":")
                if self.path.endswith(suffix) and fragment and fragment in text:
                    return True
        return False

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        if self._allowed(node):
            return
        self.findings.append(
            Finding(self.path, node.lineno, node.col_offset, code, message)
        )

    # ------------------------------------------------------------ scoping

    def _collect_bindings(self, body: Iterable[ast.stmt]) -> None:
        """Pre-pass: record which names/attrs this scope binds to sets."""
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Assign):
                    is_set = self._is_set_literalish(node.value)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.scope.bind(target.id, is_set)
                        elif (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and is_set
                        ):
                            self.scope.attrs.add(target.attr)
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                    is_set = _annotation_is_set(node.annotation) or (
                        self._is_set_literalish(node.value)
                    )
                    if isinstance(target, ast.Name):
                        self.scope.bind(target.id, is_set)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and is_set
                    ):
                        self.scope.attrs.add(target.attr)
                elif isinstance(node, ast.AugAssign):
                    # s |= other keeps s a set; anything else leaves it alone.
                    if (
                        isinstance(node.target, ast.Name)
                        and isinstance(node.op, (ast.BitOr, ast.BitAnd))
                        and self._is_set_literalish(node.value)
                    ):
                        self.scope.bind(node.target.id, True)

    def _is_set_literalish(self, node: Optional[ast.expr]) -> bool:
        """Binding-time set-likeness (no name lookups, to avoid ordering
        effects between the pre-pass and the real visit)."""
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                SET_COMBINATORS | SET_RETURNING_METHODS
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._is_set_literalish(node.left) and self._is_set_literalish(
                node.right
            )
        return False

    # ------------------------------------------------------------- visits

    def visit_Module(self, node: ast.Module) -> None:
        self._collect_bindings(node.body)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Collect self.<attr> = set(...) across all methods first, so every
        # method sees the class's set-valued attributes.
        saved_attrs = set(self.scope.attrs)
        for method in node.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_bindings(method.body)
        self.generic_visit(node)
        self.scope.attrs = saved_attrs

    def _visit_function(self, node) -> None:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id[:1].isupper()
            ):
                self._flag(
                    default,
                    "DET005",
                    f"parameter default {default.func.id}() is constructed "
                    "once at def time and shared across calls; use a None "
                    "sentinel and construct in the function body",
                )
        outer = self.scope
        self.scope = _Scope(parent=outer)
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if _annotation_is_set(arg.annotation):
                self.scope.bind(arg.arg, True)
        self._collect_bindings(node.body)
        self.generic_visit(node)
        self.scope = outer

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(
                node,
                "DET001",
                "for-loop over a set: iteration order depends on "
                "PYTHONHASHSEED (wrap in sorted()/sorted_set(), or add "
                f"'# {PRAGMA}' if order cannot matter)",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name == "hash" and len(node.args) == 1:
            self._flag(
                node,
                "DET004",
                "builtin hash() is salted per process; use "
                "repro.determinism.stable.stable_hash()",
            )
        if name in ORDER_INSENSITIVE_CALLS:
            for arg in node.args:
                self._exempt.add(id(arg))
        elif name in ORDER_PRESERVING_MATERIALIZERS:
            for arg in node.args:
                if self._is_set_expr(arg):
                    self._flag(
                        node,
                        "DET003",
                        f"{name}() materializes a set in hash order; wrap "
                        "the set in sorted()/sorted_set() first",
                    )
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if not isinstance(node, ast.SetComp) and id(node) not in self._exempt:
            for generator in node.generators:
                if self._is_set_expr(generator.iter):
                    self._flag(
                        node,
                        "DET002",
                        "comprehension over a set: result order depends on "
                        "PYTHONHASHSEED (wrap the iterable in sorted()/"
                        "sorted_set(), or reduce with an order-insensitive "
                        "function)",
                    )
                    break
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_SetComp = _visit_comprehension


def lint_file(path: str) -> list[Finding]:
    """Lint one Python file; returns its findings."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(path, error.lineno or 0, error.offset or 0, "DET000",
                    f"syntax error: {error.msg}")
        ]
    linter = _FileLinter(path, source.splitlines())
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.path, f.line, f.col))


def lint_paths(paths: Iterable[str]) -> list[Finding]:
    """Lint files and directory trees; returns all findings."""
    findings: list[Finding] = []
    for path in paths:
        if os.path.isdir(path):
            for root, __, files in sorted(os.walk(path)):
                for filename in sorted(files):
                    if filename.endswith(".py"):
                        findings.extend(lint_file(os.path.join(root, filename)))
        elif path.endswith(".py"):
            findings.extend(lint_file(path))
    return findings


def main(argv: Optional[list[str]] = None) -> int:
    """CLI: lint the given paths (default: src/repro); exit 1 on findings."""
    parser = argparse.ArgumentParser(
        prog="lint-determinism",
        description="flag hash-order-dependent iteration in Python sources",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} unordered-iteration finding(s)")
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
