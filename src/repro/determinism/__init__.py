"""Cross-process determinism: stable hashing, a build harness, and a lint.

The toolkit's contract is that a build is a pure function of its seed —
in every process, under every ``PYTHONHASHSEED``.  This package holds the
three tools that keep that contract honest:

* :mod:`repro.determinism.stable` — ``stable_hash``/``stable_str_key`` and
  the canonical-iteration / canonical-serialization helpers;
* :mod:`repro.determinism.harness` — N fresh-subprocess builds under
  distinct hash seeds, byte-compared (``repro check-determinism``);
* :mod:`repro.determinism.lint` — the AST pass that flags hash-order-
  dependent iteration (``tools/lint_determinism.py``).
"""

from .harness import (
    CROSS_MODES,
    SEGMENT_MODES,
    BuildMode,
    CrossModeReport,
    DeterminismReport,
    Divergence,
    IncrementalDeterminismReport,
    SegmentDeterminismReport,
    check_cross_mode,
    check_cross_mode_fast,
    check_determinism,
    check_incremental_determinism,
    check_segment_determinism,
    first_divergence,
    stage_of_line,
)
from .lint import Finding, lint_file, lint_paths
from .stable import (
    canonical_kb_lines,
    canonical_kb_text,
    sorted_items,
    sorted_set,
    stable_hash,
    stable_str_key,
)

__all__ = [
    "CROSS_MODES",
    "SEGMENT_MODES",
    "BuildMode",
    "CrossModeReport",
    "DeterminismReport",
    "Divergence",
    "IncrementalDeterminismReport",
    "SegmentDeterminismReport",
    "Finding",
    "canonical_kb_lines",
    "canonical_kb_text",
    "check_cross_mode",
    "check_cross_mode_fast",
    "check_determinism",
    "check_incremental_determinism",
    "check_segment_determinism",
    "first_divergence",
    "lint_file",
    "lint_paths",
    "sorted_items",
    "sorted_set",
    "stable_hash",
    "stable_str_key",
    "stage_of_line",
]
