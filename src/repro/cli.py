"""The command-line interface: build, ingest, scenario, inspect, query,
ask, serve, verify.

Eight subcommands expose the end-to-end system without writing Python::

    python -m repro build --seed 7 --people 120 --out kb.nt
    python -m repro ingest --segments segdir --seed 7 --people 120 --upto 100
    python -m repro scenario list
    python -m repro scenario evaluate --all --enforce-floors
    python -m repro stats --kb kb.nt
    python -m repro query --kb kb.nt --subject world:Viktor_Adler
    python -m repro ask --kb kb.nt "Where was Viktor Adler born?"
    python -m repro serve --kb kb.nt --port 8765
    python -m repro check-determinism --runs 3

``build`` generates a synthetic world + encyclopedia and runs the full
harvesting pipeline (``--segments DIR`` additionally emits the KB as a
byte-pinned segment directory); ``ingest`` grows a segment directory
incrementally — each invocation ingests a slice of the corpus as a delta
generation (``--start``/``--upto`` over sorted page titles), optionally
retracts facts through tombstones (``--retract S P O``) and compacts the
generation stack (``--compact``); ``stats``/``query``/``ask`` operate on
any saved KB file; ``serve`` answers ``/lookup``, ``/query``, ``/topk``,
``/healthz``, and ``/metrics`` over HTTP with an identity-keyed result
cache — from a ``.nt`` file (``--kb``) or lock-free from a segment
snapshot (``--segments``); ``scenario`` lists, builds, and quality-scores
the named stress workloads of :mod:`repro.world.scenarios` (``evaluate``
prints one greppable ``scenario:`` telemetry line per profile and
``--enforce-floors`` fails the process when any pinned quality floor is
violated — the CI-lite stress matrix); ``check-determinism`` rebuilds the KB in
fresh subprocesses under distinct ``PYTHONHASHSEED`` values and verifies
the canonical serializations are byte-identical (``--segments`` also
diffs emitted segment directories file for file, ``--incremental``
proves delta ingestion equals a one-shot rebuild byte for byte).
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import Optional, Sequence

from . import obs
from .analytics.qa import TemplateQA
from .bigdata.backends import BACKEND_NAMES, SCHEDULE_NAMES
from .corpus import build_wiki
from .extraction.resolution import NameResolver
from .kb import Entity, Literal, Relation, load, ns, save
from .pipeline import BuildConfig, KnowledgeBaseBuilder
from .world import WorldConfig, generate_world


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Knowledge-base construction and analytics toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser(
        "build", help="generate a world and harvest a knowledge base from it"
    )
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--people", type=int, default=120)
    build.add_argument("--out", required=True, help="output .nt file")
    build.add_argument(
        "--segments",
        default=None,
        metavar="DIR",
        help="also emit the KB as a byte-pinned segment directory "
        "(SPO/POS/OSP order files + bloom sidecars + manifest)",
    )
    build.add_argument(
        "--trace",
        action="store_true",
        help="print a span tree and metrics table for the pipeline run",
    )
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run extraction through map-reduce with this many shards",
    )
    build.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan per-page extraction out over this many workers "
        "(0 or 1 = in-process)",
    )
    build.add_argument(
        "--backend",
        choices=("auto",) + BACKEND_NAMES,
        default="auto",
        help="execution backend for --workers "
        "(auto = process pool when workers > 1)",
    )
    build.add_argument(
        "--reasoner-workers",
        type=int,
        default=0,
        help="fan consistency-reasoning MaxSat components out over this "
        "many workers (0 or 1 = in-process)",
    )
    build.add_argument(
        "--reasoner-backend",
        choices=("auto",) + BACKEND_NAMES,
        default="auto",
        help="execution backend for --reasoner-workers "
        "(auto = process pool when reasoner workers > 1)",
    )
    build.add_argument(
        "--schedule",
        choices=SCHEDULE_NAMES,
        default="static",
        help="worker dispatch: 'static' hands out task batches in index "
        "order; 'steal' feeds workers from a shared queue largest-"
        "estimated-cost-first (same KB bytes either way)",
    )
    build.add_argument(
        "--corpus-transport",
        choices=("auto", "memory", "file"),
        default="auto",
        help="how workers receive the corpus: 'memory' pickles the whole "
        "Wiki into each worker, 'file' writes it once as a mmap-able "
        "corpus file workers open pages from by title ('auto' = file "
        "for process pools; same KB bytes either way)",
    )
    build.add_argument(
        "--corpus-file",
        default=None,
        metavar="PATH",
        help="materialize (or reuse, when its content matches the "
        "generated corpus) the corpus file at this path instead of a "
        "temporary location",
    )

    ingest = commands.add_parser(
        "ingest",
        help="grow a segment directory incrementally, one delta at a time",
    )
    ingest.add_argument(
        "--segments", required=True, metavar="DIR",
        help="segment directory to grow (created on first ingest; holds "
        "the builder state file alongside the segment files)",
    )
    ingest.add_argument("--seed", type=int, default=7)
    ingest.add_argument("--people", type=int, default=120)
    ingest.add_argument(
        "--start", type=int, default=0,
        help="first page of the batch (index into sorted page titles)",
    )
    ingest.add_argument(
        "--upto", type=int, default=None,
        help="end of the batch, exclusive (default: all remaining pages)",
    )
    ingest.add_argument(
        "--retract", nargs=3, action="append", default=None,
        metavar=("S", "P", "O"),
        help="retract a fact by canonical term texts, e.g. "
        "'<world:X>' '<<rel:bornIn>>' '<world:Y>' — tombstoned in this "
        "delta and erased from every future snapshot (repeatable)",
    )
    ingest.add_argument(
        "--compact", action="store_true",
        help="fold the generation stack to canonical single-segment form "
        "after the ingest (drops tombstones for good)",
    )
    ingest.add_argument(
        "--workers", type=int, default=0,
        help="extraction/pipeline workers (0 or 1 = in-process)",
    )
    ingest.add_argument(
        "--backend", choices=("auto",) + BACKEND_NAMES, default="auto",
    )
    ingest.add_argument("--reasoner-workers", type=int, default=0)
    ingest.add_argument(
        "--reasoner-backend", choices=("auto",) + BACKEND_NAMES,
        default="auto",
    )
    ingest.add_argument(
        "--schedule", choices=SCHEDULE_NAMES, default="static",
    )

    scenario = commands.add_parser(
        "scenario",
        help="list, build, or quality-score the named stress workloads",
    )
    scenario_actions = scenario.add_subparsers(dest="action", required=True)
    scenario_actions.add_parser(
        "list", help="show every shipped scenario profile"
    )
    scenario_build = scenario_actions.add_parser(
        "build", help="build one scenario's KB through the real pipeline"
    )
    scenario_build.add_argument(
        "--name", required=True, help="scenario profile, e.g. burst_social"
    )
    scenario_build.add_argument(
        "--out", default=None, help="write the built KB to this .nt file"
    )
    scenario_build.add_argument(
        "--segments", default=None, metavar="DIR",
        help="also emit the KB as a byte-pinned segment directory",
    )
    scenario_build.add_argument("--workers", type=int, default=0)
    scenario_build.add_argument(
        "--backend", choices=("auto",) + BACKEND_NAMES, default="auto"
    )
    scenario_eval = scenario_actions.add_parser(
        "evaluate",
        help="build scenario(s) and score extraction + KB quality "
        "against gold (one greppable 'scenario:' line each)",
    )
    scenario_eval.add_argument(
        "--name", action="append", default=None,
        help="profile to evaluate (repeatable; default with --all: all)",
    )
    scenario_eval.add_argument(
        "--all", action="store_true", help="evaluate every shipped profile"
    )
    scenario_eval.add_argument(
        "--enforce-floors", action="store_true",
        help="exit 1 if any scenario scores below its pinned quality floor",
    )
    scenario_eval.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the scores as a JSON document",
    )
    scenario_eval.add_argument(
        "--no-burst-leg", action="store_true",
        help="skip the incremental-ingest leg of burst scenarios",
    )
    scenario_eval.add_argument("--workers", type=int, default=0)
    scenario_eval.add_argument(
        "--backend", choices=("auto",) + BACKEND_NAMES, default="auto"
    )

    stats = commands.add_parser("stats", help="summarize a saved knowledge base")
    stats.add_argument("--kb", required=True)

    query = commands.add_parser("query", help="match triples in a saved KB")
    query.add_argument("--kb", required=True)
    query.add_argument("--subject", help="subject id, e.g. world:Viktor_Adler")
    query.add_argument("--predicate", help="relation id, e.g. rel:bornIn")
    query.add_argument("--object", dest="object_", help="object entity id")
    query.add_argument("--limit", type=int, default=20)

    ask = commands.add_parser("ask", help="answer a natural-language question")
    ask.add_argument("--kb", required=True)
    ask.add_argument("question", help='e.g. "Where was Viktor Adler born?"')

    serve = commands.add_parser(
        "serve", help="serve a saved KB over HTTP with a cached query engine"
    )
    serve.add_argument("--kb", help="saved .nt KB file to serve")
    serve.add_argument(
        "--segments",
        default=None,
        metavar="DIR",
        help="serve a segment directory through a lock-free immutable "
        "snapshot instead of an in-memory store",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="handler threads (0 = server default; an explicit 1 means "
        "exactly one server thread)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="result-cache capacity (entries)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )

    determinism = commands.add_parser(
        "check-determinism",
        help="verify the build is byte-identical across processes",
    )
    determinism.add_argument(
        "--runs", type=int, default=3,
        help="number of fresh-subprocess builds (distinct PYTHONHASHSEED each)",
    )
    determinism.add_argument("--seed", type=int, default=7)
    determinism.add_argument(
        "--people", type=int, default=40,
        help="world size per run (small default keeps the check fast)",
    )
    determinism.add_argument(
        "--shards", type=int, default=None,
        help="also exercise the map-reduce extraction path",
    )
    determinism.add_argument(
        "--skip-lint", action="store_true",
        help="only run the subprocess comparison, not the iteration lint",
    )
    determinism.add_argument(
        "--cross-mode", action="store_true",
        help="also verify serial, sharded, threaded, and process-parallel "
        "builds (extraction and reasoner workers) agree byte for byte",
    )
    determinism.add_argument(
        "--fast", action="store_true",
        help="run the cross-mode matrix in-process instead of the "
        "subprocess builds (skips the PYTHONHASHSEED variation but "
        "exercises every execution mode in a fraction of the time)",
    )
    determinism.add_argument(
        "--segments", action="store_true",
        help="also emit segment directories (serial, thread, and process "
        "builds) and verify they are byte-identical file for file",
    )
    determinism.add_argument(
        "--incremental", action="store_true",
        help="also verify delta ingestion (two batches + a tombstoned "
        "retraction + compaction) is byte-identical to a one-shot "
        "rebuild, per execution mode",
    )

    return parser


def _command_build(args, out) -> int:
    if args.shards is not None and args.shards < 1:
        print("error: --shards must be at least 1", file=out)
        return 2
    if args.workers < 0:
        print("error: --workers must be non-negative", file=out)
        return 2
    if args.reasoner_workers < 0:
        print("error: --reasoner-workers must be non-negative", file=out)
        return 2
    print(f"Generating world (seed={args.seed}, people={args.people}) ...", file=out)
    world = generate_world(WorldConfig(seed=args.seed, n_people=args.people))
    wiki = build_wiki(world)
    workers_note = (
        f" with {args.workers} {args.backend} workers"
        + (" (work-stealing)" if args.schedule == "steal" else "")
        if args.workers > 1
        else ""
    )
    print(f"Harvesting from {len(wiki.pages)} pages{workers_note} ...", file=out)
    if args.trace:
        obs.reset()
        obs.enable()
    config = BuildConfig(
        mapreduce_shards=args.shards,
        workers=args.workers,
        backend=args.backend,
        reasoner_workers=args.reasoner_workers,
        reasoner_backend=args.reasoner_backend,
        schedule=args.schedule,
        corpus_transport=args.corpus_transport,
        corpus_file=args.corpus_file,
    )
    try:
        kb, report = KnowledgeBaseBuilder(
            wiki, aliases=world.aliases, config=config
        ).build()
    finally:
        if args.trace:
            obs.disable()
    count = save(kb, args.out)
    if args.segments is not None:
        from .pipeline import emit_segments

        manifest = emit_segments(kb, args.segments)
        print(
            f"Emitted {len(manifest['segments'])} segment(s) "
            f"({manifest['triples']} triples, epoch {manifest['epoch'][:12]}…) "
            f"to {args.segments}",
            file=out,
        )
    print(
        f"Accepted {report.accepted_facts} facts "
        f"({report.consistency.rejected} rejected by consistency reasoning); "
        f"wrote {count} triples to {args.out}",
        file=out,
    )
    if args.trace:
        print("\n--- trace ---", file=out)
        print(obs.render_trace(), file=out)
        print("\n--- metrics ---", file=out)
        print(obs.render_metrics(), file=out)
        from .bigdata import advise_worker_count

        advice = advise_worker_count(args.workers)
        if advice is not None:
            print(
                f"\nworkers: {advice['workers']} at "
                f"{advice['utilization']:.0%} utilization "
                f"(busy {advice['busy_s']:.2f}s of "
                f"{advice['workers']}x{advice['wall_s']:.2f}s wall) "
                f"-> recommended {advice['recommended']} "
                f"(of {advice['cpus']} CPUs)",
                file=out,
            )
    return 0


def _command_ingest(args, out) -> int:
    from .pipeline import IncrementalBuilder

    if args.workers < 0 or args.reasoner_workers < 0:
        print("error: worker counts must be non-negative", file=out)
        return 2
    if args.start < 0:
        print("error: --start must be non-negative", file=out)
        return 2
    print(
        f"Generating world (seed={args.seed}, people={args.people}) ...",
        file=out,
    )
    world = generate_world(WorldConfig(seed=args.seed, n_people=args.people))
    wiki = build_wiki(world)
    titles = sorted(wiki.pages)
    upto = len(titles) if args.upto is None else min(args.upto, len(titles))
    batch = [wiki.pages[title] for title in titles[args.start:upto]]
    retract = [tuple(key) for key in (args.retract or [])]
    config = BuildConfig(
        workers=args.workers,
        backend=args.backend,
        reasoner_workers=args.reasoner_workers,
        reasoner_backend=args.reasoner_backend,
        schedule=args.schedule,
    )
    print(
        f"Ingesting pages [{args.start}, {upto}) of {len(titles)} "
        f"into {args.segments} ...",
        file=out,
    )
    builder = IncrementalBuilder(args.segments, config)
    try:
        report = builder.ingest(
            pages=batch,
            aliases=world.aliases,
            retract=retract,
            compact=args.compact,
        )
    finally:
        builder.close()
    print(
        f"ingest: batch_pages={report.batch_pages} "
        f"total_pages={report.total_pages} "
        f"affected_names={report.affected_names}",
        file=out,
    )
    print(
        f"extraction: reextracted={report.reextracted_pages} "
        f"cached_pages={report.cached_pages}",
        file=out,
    )
    print(
        f"reasoning: components={report.components} "
        f"cached_components={report.cached_components}",
        file=out,
    )
    print(
        f"delta: segment={report.segment or '-'} added={report.added} "
        f"tombstones={report.tombstones} retracted={report.retracted} "
        f"compacted={str(report.compacted).lower()}",
        file=out,
    )
    print(
        f"epoch: {report.epoch_before[:12]} -> {report.epoch_after[:12]}",
        file=out,
    )
    print(
        f"{report.triples} triples total in {report.elapsed:.2f}s",
        file=out,
    )
    return 0


def _command_scenario(args, out) -> int:
    from .world.scenarios import SCENARIOS, build_scenario

    if args.action == "list":
        print(f"{len(SCENARIOS)} scenario profiles:", file=out)
        for name, spec in SCENARIOS.items():
            print(f"  {name:<18} [{spec.stresses}]", file=out)
            print(f"      {spec.description}", file=out)
            print(
                f"      seeds: world={spec.world.seed} wiki={spec.wiki.seed} "
                f"corpus={spec.corpus.seed}"
                + (f" social={spec.social.seed}" if spec.social else ""),
                file=out,
            )
        return 0

    if args.action == "build":
        if args.workers < 0:
            print("error: --workers must be non-negative", file=out)
            return 2
        try:
            bundle = build_scenario(args.name)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=out)
            return 2
        print(
            f"Building scenario {args.name} "
            f"({len(bundle.wiki.pages)} pages) ...",
            file=out,
        )
        config = BuildConfig(workers=args.workers, backend=args.backend)
        kb, report = KnowledgeBaseBuilder(
            bundle.wiki, aliases=bundle.world.aliases, config=config
        ).build()
        print(
            f"scenario: name={args.name} pages={report.pages} "
            f"sentences={report.sentences} triples={len(kb)} "
            f"accepted={report.accepted_facts} "
            f"fingerprint={bundle.fingerprint()}",
            file=out,
        )
        if args.out is not None:
            count = save(kb, args.out)
            print(f"wrote {count} triples to {args.out}", file=out)
        if args.segments is not None:
            from .pipeline import emit_segments

            manifest = emit_segments(kb, args.segments)
            print(
                f"emitted {len(manifest['segments'])} segment(s) "
                f"({manifest['triples']} triples) to {args.segments}",
                file=out,
            )
        return 0

    # evaluate
    from .eval.scenarios import check_floors, evaluate_matrix

    if args.workers < 0:
        print("error: --workers must be non-negative", file=out)
        return 2
    if args.name and args.all:
        print("error: pass --name or --all, not both", file=out)
        return 2
    names = None if args.all or not args.name else list(args.name)
    unknown = [n for n in names or [] if n not in SCENARIOS]
    if unknown:
        known = ", ".join(SCENARIOS)
        print(f"error: unknown scenario(s) {unknown} (known: {known})", file=out)
        return 2
    scores = evaluate_matrix(
        names,
        workers=args.workers,
        backend=args.backend,
        burst_leg=not args.no_burst_leg,
    )
    for score in scores:
        print(score.telemetry(), file=out)
    violations = check_floors(scores)
    if args.json is not None:
        import json

        payload = [
            {
                "name": score.name,
                "pages": score.pages,
                "sentences": score.sentences,
                "triples": score.triples,
                "build_seconds": score.build_seconds,
                "backend": score.backend,
                "workers": score.workers,
                "extraction": {
                    "precision": score.extraction.precision,
                    "recall": score.extraction.recall,
                    "f1": score.extraction.f1,
                },
                "kb": {
                    "precision": score.kb.precision,
                    "recall": score.kb.recall,
                    "f1": score.kb.f1,
                },
                "knobs": score.knobs,
                "fingerprint": score.fingerprint,
                "incremental_identical": score.incremental_identical,
            }
            for score in scores
        ]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {"scores": payload, "violations": violations}, handle, indent=2
            )
        print(f"wrote scores to {args.json}", file=out)
    if violations:
        for violation in violations:
            print(f"floor violation: {violation}", file=out)
        if args.enforce_floors:
            return 1
    elif args.enforce_floors:
        print(f"floors: all {len(scores)} scenario(s) above their floors", file=out)
    return 0


def _command_stats(args, out) -> int:
    kb = load(args.kb)
    predicates: Counter = Counter()
    scoped = 0
    for triple in kb:
        predicates[triple.predicate.id] += 1
        if triple.scope is not None:
            scoped += 1
    print(f"{len(kb)} triples, {len(kb.entities())} entities, "
          f"{scoped} temporally scoped", file=out)
    for predicate, count in predicates.most_common(15):
        print(f"  {count:>6}  {predicate}", file=out)
    return 0


def _command_query(args, out) -> int:
    kb = load(args.kb)
    subject = Entity(args.subject) if args.subject else None
    predicate = Relation(args.predicate) if args.predicate else None
    object_ = Entity(args.object_) if args.object_ else None
    shown = 0
    for triple in kb.match(subject=subject, predicate=predicate, obj=object_):
        print(f"  {triple}  (conf={triple.confidence:.2f})", file=out)
        shown += 1
        if shown >= args.limit:
            print(f"  ... (limited to {args.limit})", file=out)
            break
    if shown == 0:
        print("  no matching triples", file=out)
    return 0


def _command_ask(args, out) -> int:
    kb = load(args.kb)
    resolver = NameResolver()
    for triple in kb.match(predicate=ns.PREF_LABEL):
        if isinstance(triple.object, Literal):
            resolver.add(triple.object.value, triple.subject, count=5)
    qa = TemplateQA(kb, resolver)
    answers = qa.answer(args.question)
    if not answers:
        print("no answer", file=out)
        return 1
    for answer in answers[:5]:
        print(f"  {answer.text}  (conf={answer.confidence:.2f})", file=out)
    return 0


def _command_serve(args, out) -> int:
    from .serving import serve_kb

    if args.workers < 0:
        print("error: --workers must be non-negative", file=out)
        return 2
    if args.cache_size < 1:
        print("error: --cache-size must be positive", file=out)
        return 2
    if (args.kb is None) == (args.segments is None):
        print("error: pass exactly one of --kb or --segments", file=out)
        return 2
    if args.segments is not None:
        from .kb.segments import open_snapshot

        try:
            kb = open_snapshot(args.segments)
        except (OSError, ValueError) as error:
            print(f"error: cannot open segment snapshot: {error}", file=out)
            return 2
    else:
        try:
            kb = load(args.kb)
        except OSError as error:
            print(f"error: cannot load KB: {error}", file=out)
            return 2
    server = serve_kb(
        kb,
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_size=args.cache_size,
        verbose=args.verbose,
    )
    host, port = server.address
    source_note = (
        f"segment snapshot {args.segments}" if args.segments is not None
        else "in-memory store"
    )
    print(
        f"Serving {len(kb)} triples ({source_note}) on http://{host}:{port} "
        f"with {server.workers} worker thread(s) "
        f"(cache capacity {args.cache_size}); Ctrl-C to stop",
        file=out,
        flush=True,
    )
    try:
        server.run_forever()
    except KeyboardInterrupt:
        server.shutdown()
        print("shutting down", file=out)
    return 0


def _command_check_determinism(args, out) -> int:
    from .determinism import check_determinism, lint_paths

    if args.runs < 2:
        print("error: --runs must be at least 2", file=out)
        return 2
    status = 0
    if not args.skip_lint:
        package_root = __path_of_package()
        findings = lint_paths([package_root])
        if findings:
            for finding in findings:
                print(finding.render(), file=out)
            print(f"lint: {len(findings)} unordered-iteration finding(s)", file=out)
            status = 1
        else:
            print("lint: clean", file=out)
    if args.fast:
        from .determinism import CROSS_MODES, check_cross_mode_fast

        labels = ", ".join(mode.label for mode in CROSS_MODES)
        print(
            f"Fast cross-mode: building in-process once per mode "
            f"({labels}) ...",
            file=out,
        )
        fast = check_cross_mode_fast(seed=args.seed, people=args.people)
        print(fast.describe(), file=out)
        if not fast.ok:
            return 1
        return status
    print(
        f"Building {args.runs}x (seed={args.seed}, people={args.people}"
        + (f", shards={args.shards}" if args.shards else "")
        + ") under distinct PYTHONHASHSEED values ...",
        file=out,
    )
    report = check_determinism(
        runs=args.runs, seed=args.seed, people=args.people, shards=args.shards
    )
    print(report.describe(), file=out)
    if not report.ok:
        return 1
    if args.cross_mode:
        from .determinism import CROSS_MODES, check_cross_mode

        labels = ", ".join(mode.label for mode in CROSS_MODES)
        print(f"Cross-mode: building once per mode ({labels}) ...", file=out)
        cross = check_cross_mode(seed=args.seed, people=args.people)
        print(cross.describe(), file=out)
        if not cross.ok:
            return 1
    if args.segments:
        from .determinism import SEGMENT_MODES, check_segment_determinism

        labels = ", ".join(mode.label for mode in SEGMENT_MODES)
        print(
            f"Segments: building once per mode ({labels}) and diffing "
            "the emitted files ...",
            file=out,
        )
        segment_report = check_segment_determinism(
            seed=args.seed, people=args.people
        )
        print(segment_report.describe(), file=out)
        if not segment_report.ok:
            return 1
    if args.incremental:
        from .determinism import SEGMENT_MODES, check_incremental_determinism

        labels = ", ".join(mode.label for mode in SEGMENT_MODES)
        print(
            f"Incremental: per mode ({labels}), ingesting two batches "
            "(with a tombstoned retraction), compacting, and diffing "
            "against a one-shot rebuild ...",
            file=out,
        )
        incremental_report = check_incremental_determinism(
            seed=args.seed, people=args.people
        )
        print(incremental_report.describe(), file=out)
        if not incremental_report.ok:
            return 1
    return status


def __path_of_package() -> str:
    import os

    return os.path.dirname(os.path.abspath(__file__))


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    if out is None:
        out = sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {
        "build": _command_build,
        "ingest": _command_ingest,
        "scenario": _command_scenario,
        "stats": _command_stats,
        "query": _command_query,
        "ask": _command_ask,
        "serve": _command_serve,
        "check-determinism": _command_check_determinism,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
