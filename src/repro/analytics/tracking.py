"""Entity tracking in social media — the tutorial's motivating application.

"An example application could aim to track and compare two entities in
social media over an extended timespan (e.g., the Apple iPhone vs Samsung
Galaxy families).  In this context, knowledge about entities is a key
asset."  (Section 4.)

Two product-assignment strategies are compared (E12):

* **string** — exact product-name match; a family-level alias ("Nova") is
  assigned to the family's most popular generation regardless of when the
  post was written;
* **kb** — the knowledge-backed resolver: a family alias at month *m* is
  resolved to the family's most recent generation *released by m*, using
  the KB's releaseYear facts — the kind of disambiguation only entity
  knowledge enables.

Both then aggregate per-family monthly volume and lexicon sentiment.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from ..kb import Entity, TripleStore
from ..corpus.social import SocialStream
from ..world import schema as ws
from .sentiment import classify_sentiment, sentiment_value

METHODS = ("string", "kb")


@dataclass(slots=True)
class TrackingResult:
    """The recovered comparison series plus assignment quality."""

    months: int
    families: list[str]
    volume: dict[str, list[int]] = field(default_factory=dict)
    sentiment: dict[str, list[float]] = field(default_factory=dict)
    product_assignments: dict[str, Entity] = field(default_factory=dict)
    assignment_correct: int = 0
    assignment_total: int = 0
    sentiment_correct: int = 0

    @property
    def assignment_accuracy(self) -> float:
        """Product-level assignment accuracy against the gold labels."""
        if self.assignment_total == 0:
            return 1.0
        return self.assignment_correct / self.assignment_total

    @property
    def sentiment_accuracy(self) -> float:
        """Post-level sentiment accuracy against the gold labels."""
        if self.assignment_total == 0:
            return 1.0
        return self.sentiment_correct / self.assignment_total


class ProductTracker:
    """Track rival product families over a timestamped post stream."""

    def __init__(self, kb: TripleStore, products: dict[Entity, str]) -> None:
        """``kb`` supplies releaseYear facts; ``products`` maps each
        product entity to its family name."""
        self.kb = kb
        self.family_of = dict(products)
        self.products_of: dict[str, list[Entity]] = defaultdict(list)
        for product, family in sorted(products.items(), key=lambda kv: kv[0].id):
            self.products_of[family].append(product)
        self._release_year: dict[Entity, Optional[int]] = {}
        for product in products:
            literal = kb.one_object(product, ws.RELEASE_YEAR)
            self._release_year[product] = (
                int(literal.value) if literal is not None else None
            )
        self._names: dict[str, Entity] = {}
        for product in products:
            for label in kb.labels_of(product):
                self._names[label] = product

    # ----------------------------------------------------------- resolution

    def resolve(
        self, surface: str, month: int, start_year: int, method: str
    ) -> Optional[Entity]:
        """Map a post's product mention to a product entity."""
        if method not in METHODS:
            raise ValueError(f"unknown tracking method: {method!r}")
        exact = self._names.get(surface)
        if exact is not None:
            return exact
        generations = self.products_of.get(surface)
        if not generations:
            return None
        if method == "string":
            # Family alias, no temporal knowledge: the (statically) most
            # recent generation wins every time.
            return max(
                generations,
                key=lambda p: (self._release_year.get(p) or 0, p.id),
            )
        # KB method: the newest generation already released at post time.
        post_year = start_year + month // 12
        released = [
            p for p in generations
            if self._release_year.get(p) is not None
            and self._release_year[p] <= post_year
        ]
        pool = released or generations
        return max(
            pool, key=lambda p: (self._release_year.get(p) or 0, p.id)
        )

    # ------------------------------------------------------------- tracking

    def track(
        self, stream: SocialStream, method: str = "kb", start_year: int = 2012
    ) -> TrackingResult:
        """Run the full tracking analysis over a stream."""
        months = max((post.month for post in stream.posts), default=-1) + 1
        result = TrackingResult(months=months, families=list(stream.families))
        for family in stream.families:
            result.volume[family] = [0] * months
            result.sentiment[family] = [0.0] * months
        sums: dict[str, list[float]] = {
            family: [0.0] * months for family in stream.families
        }
        for post in stream.posts:
            product = self.resolve(post.surface, post.month, start_year, method)
            if product is None:
                continue
            family = self.family_of.get(product)
            if family is None:
                continue
            result.assignment_total += 1
            if product == post.product:
                result.assignment_correct += 1
            predicted_sentiment = classify_sentiment(post.text)
            if predicted_sentiment == post.sentiment:
                result.sentiment_correct += 1
            result.volume[family][post.month] += 1
            sums[family][post.month] += sentiment_value(predicted_sentiment)
        for family in stream.families:
            for month in range(months):
                count = result.volume[family][month]
                result.sentiment[family][month] = (
                    sums[family][month] / count if count else 0.0
                )
        return result


def volume_correlation(recovered: list[int], gold: list[int]) -> float:
    """Pearson correlation between a recovered and gold monthly series."""
    n = len(recovered)
    if n != len(gold) or n == 0:
        raise ValueError("series must be equal-length and non-empty")
    mean_r = sum(recovered) / n
    mean_g = sum(gold) / n
    cov = sum((r - mean_r) * (g - mean_g) for r, g in zip(recovered, gold))
    var_r = sum((r - mean_r) ** 2 for r in recovered)
    var_g = sum((g - mean_g) ** 2 for g in gold)
    if var_r == 0 or var_g == 0:
        return 1.0 if var_r == var_g else 0.0
    return cov / (var_r ** 0.5 * var_g ** 0.5)
