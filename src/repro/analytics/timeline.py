"""Entity timelines from temporally scoped facts (the YAGO2 payoff).

YAGO2 (reference [15] of the tutorial) anchors facts in time so that an
entity's life can be laid out as a timeline: born, studied, positions
held, marriages, prizes, death.  This module assembles that view from any
store whose facts carry year literals and :class:`TimeSpan` scopes, and
answers the classic temporal-join question "what else was true while X
held position P?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kb import Entity, Literal, Relation, TimeSpan, TripleStore, ns
from ..world import schema as ws

#: Relations rendered as point events from year literals.
_POINT_ATTRIBUTES: tuple[tuple[Relation, str], ...] = (
    (ws.BIRTH_YEAR, "born"),
    (ws.DEATH_YEAR, "died"),
)

#: Scoped relations rendered as interval events.
_INTERVAL_LABELS: dict[Relation, str] = {
    ws.WORKS_AT: "worked at",
    ws.CEO_OF: "led",
    ws.MARRIED_TO: "married to",
    ws.WON_PRIZE: "won",
    ws.LIVES_IN: "lived in",
}


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One dated event in an entity's life."""

    span: TimeSpan
    label: str
    target: Optional[Entity]
    target_name: str

    def render(self) -> str:
        begin = "?" if self.span.begin is None else str(self.span.begin)
        if self.span.is_point:
            when = begin
        else:
            end = "" if self.span.end is None else str(self.span.end)
            when = f"{begin}-{end}"
        suffix = f" {self.target_name}" if self.target_name else ""
        return f"{when}: {self.label}{suffix}"


def _name_of(store: TripleStore, entity: Entity) -> str:
    for literal in store.objects(entity, ns.PREF_LABEL):
        if isinstance(literal, Literal):
            return literal.value
    labels = store.labels_of(entity, lang="en") or store.labels_of(entity)
    return labels[0] if labels else entity.local_name.replace("_", " ")


def timeline_of(store: TripleStore, entity: Entity) -> list[TimelineEvent]:
    """The dated events of an entity, chronologically ordered."""
    events: list[TimelineEvent] = []
    for relation, label in _POINT_ATTRIBUTES:
        for triple in store.match(subject=entity, predicate=relation):
            if isinstance(triple.object, Literal):
                year = int(triple.object.value)
                events.append(
                    TimelineEvent(TimeSpan(year, year), label, None, "")
                )
    for relation, label in _INTERVAL_LABELS.items():
        for triple in store.match(subject=entity, predicate=relation):
            if triple.scope is None or not isinstance(triple.object, Entity):
                continue
            events.append(
                TimelineEvent(
                    triple.scope,
                    label,
                    triple.object,
                    _name_of(store, triple.object),
                )
            )
    events.sort(
        key=lambda e: (
            e.span.begin if e.span.begin is not None else -10_000,
            e.label,
            e.target_name,
        )
    )
    return events


def concurrent_events(
    store: TripleStore, entity: Entity, span: TimeSpan
) -> list[TimelineEvent]:
    """The entity's events whose spans overlap a given interval."""
    return [
        event for event in timeline_of(store, entity)
        if event.span.overlaps(span)
    ]


def events_in_year(store: TripleStore, entity: Entity, year: int) -> list[TimelineEvent]:
    """The entity's events that held in a specific year."""
    return concurrent_events(store, entity, TimeSpan(year, year))
