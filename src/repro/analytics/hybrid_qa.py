"""Hybrid question answering: KB lookup with text-evidence fallback.

IBM Watson (tutorial section 1) famously combined curated knowledge with
evidence scored directly over text.  This module implements that
two-tier recipe on our substrates: a question first goes to the KB
(:class:`~repro.analytics.qa.TemplateQA`); if the KB has no answer, the
corpus is consulted — candidate answers are extracted from the sentences
mentioning the question entity and scored by how many independent
sentences support them.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from ..kb import Entity, Relation, TripleStore
from ..extraction.occurrences import corpus_occurrences
from ..extraction.patterns import PatternExtractor
from ..extraction.resolution import NameResolver
from .qa import TemplateQA, _TEMPLATES


@dataclass(frozen=True, slots=True)
class HybridAnswer:
    """An answer plus which tier produced it."""

    text: str
    confidence: float
    source: str  # "kb" | "text"


class HybridQA:
    """Two-tier QA: structured lookup first, text evidence second."""

    def __init__(
        self,
        kb: TripleStore,
        resolver: NameResolver,
        corpus_sentences: Iterable[str],
    ) -> None:
        self.kb = kb
        self.resolver = resolver
        self._template_qa = TemplateQA(kb, resolver)
        self._evidence = self._index_corpus(list(corpus_sentences))

    def _index_corpus(
        self, sentences: list[str]
    ) -> dict[tuple[Entity, Relation, str], Counter]:
        """(subject, relation, direction) -> Counter of answer entities.

        Candidates come from pattern extraction over the corpus; each
        extracted witness is one vote of textual evidence.
        """
        occurrences = corpus_occurrences(sentences, self.resolver)
        candidates = PatternExtractor().extract(occurrences)
        index: dict[tuple[Entity, Relation, str], Counter] = defaultdict(Counter)
        for candidate in candidates:
            if not isinstance(candidate.object, Entity):
                continue
            index[(candidate.subject, candidate.relation, "forward")][
                candidate.object
            ] += 1
            index[(candidate.object, candidate.relation, "inverse")][
                candidate.subject
            ] += 1
        return index

    # ---------------------------------------------------------------- answer

    def answer(self, question: str) -> list[HybridAnswer]:
        """KB answers when available, text-evidence answers otherwise."""
        kb_answers = self._template_qa.answer(question)
        if kb_answers:
            return [
                HybridAnswer(a.text, a.confidence, "kb") for a in kb_answers
            ]
        parsed = self._parse(question)
        if parsed is None:
            return []
        entity, relation, direction = parsed
        votes = self._evidence.get((entity, relation, direction))
        if not votes:
            return []
        total = sum(votes.values())
        answers = []
        for candidate, count in votes.most_common():
            name = self._name_of(candidate)
            answers.append(
                HybridAnswer(name, count / (total + 1), "text")
            )
        return answers

    def _parse(self, question: str) -> Optional[tuple[Entity, Relation, str]]:
        question = question.strip()
        for pattern, relation, direction in _TEMPLATES:
            match = pattern.match(question)
            if match is None:
                continue
            entity = self.resolver.resolve(match.group("x").strip())
            if entity is None:
                return None
            return entity, relation, direction
        return None

    def _name_of(self, entity: Entity) -> str:
        from ..kb import Literal, ns

        for literal in self.kb.objects(entity, ns.PREF_LABEL):
            if isinstance(literal, Literal):
                return literal.value
        labels = self.kb.labels_of(entity)
        if labels:
            return labels[0]
        return entity.local_name.replace("_", " ")
