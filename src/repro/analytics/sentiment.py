"""A lexicon-based sentiment classifier for short social posts."""

from __future__ import annotations

from ..nlp.tokenizer import iter_token_texts

POSITIVE_WORDS = frozenset(
    {"love", "amazing", "best", "worth", "great", "awesome", "forever",
     "works", "upgraded", "finally"}
)
NEGATIVE_WORDS = frozenset(
    {"overheating", "cracked", "regretting", "slow", "dies", "broke",
     "worst", "hate", "terrible", "problem"}
)


def classify_sentiment(text: str) -> str:
    """"pos" | "neg" | "neu" by lexicon vote."""
    positive = negative = 0
    for token in iter_token_texts(text):
        lower = token.lower()
        if lower in POSITIVE_WORDS:
            positive += 1
        elif lower in NEGATIVE_WORDS:
            negative += 1
    if positive > negative:
        return "pos"
    if negative > positive:
        return "neg"
    return "neu"


def sentiment_value(label: str) -> float:
    """pos -> +1, neg -> -1, neu -> 0."""
    return {"pos": 1.0, "neg": -1.0}.get(label, 0.0)
