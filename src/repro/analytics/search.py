"""Semantic entity search over a knowledge base.

Knowledge-backed search returns *entities*, not strings (tutorial
sections 1 and 4): a query combines free-text keywords with an optional
class constraint, and results are ranked by keyword overlap with each
entity's KB neighbourhood plus a popularity prior.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Optional

from ..kb import Entity, Literal, Taxonomy, TripleStore, ns
from ..nlp.tokenizer import iter_token_texts


@dataclass(frozen=True, slots=True)
class SearchHit:
    """One ranked result."""

    entity: Entity
    score: float
    name: str


class EntitySearch:
    """A keyword + class-constraint search index over a triple store."""

    def __init__(self, store: TripleStore, taxonomy: Optional[Taxonomy] = None) -> None:
        self.store = store
        self.taxonomy = taxonomy if taxonomy is not None else Taxonomy(store)
        self._profiles: dict[Entity, Counter] = defaultdict(Counter)
        self._document_frequency: Counter = Counter()
        self._popularity: Counter = Counter()
        self._build()

    def _build(self) -> None:
        names: dict[Entity, str] = {}
        for triple in self.store:
            subject = triple.subject
            if not isinstance(subject, Entity):
                continue
            obj = triple.object
            if triple.predicate in (ns.LABEL, ns.PREF_LABEL) and isinstance(obj, Literal):
                names.setdefault(subject, obj.value)
                self._profiles[subject].update(_words(obj.value))
            elif isinstance(obj, Entity):
                self._popularity[obj] += 1
                label = None
                for literal in self.store.objects(obj, ns.PREF_LABEL):
                    if isinstance(literal, Literal):
                        label = literal.value
                        break
                if label:
                    self._profiles[subject].update(_words(label))
            elif isinstance(obj, Literal):
                self._profiles[subject].update(_words(obj.value))
        self._names = names
        for profile in self._profiles.values():
            for word in set(profile):  # det: allow-unordered -- counter increments commute
                self._document_frequency[word] += 1

    def search(
        self,
        query: str,
        class_filter: Optional[Entity] = None,
        top_k: int = 10,
    ) -> list[SearchHit]:
        """Rank entities by tf-idf keyword overlap (+ small prior)."""
        query_words = _words(query)
        if not query_words:
            return []
        documents = max(len(self._profiles), 1)
        scores: dict[Entity, float] = defaultdict(float)
        for word in query_words:
            idf = math.log((documents + 1) / (self._document_frequency.get(word, 0) + 1)) + 1.0
            for entity, profile in self._profiles.items():
                if word in profile:
                    scores[entity] += idf * (1.0 + math.log(profile[word]))
        hits = []
        for entity, score in scores.items():
            if class_filter is not None and not self.taxonomy.is_instance_of(
                entity, class_filter
            ):
                continue
            prior = math.log(1 + self._popularity.get(entity, 0)) * 0.1
            hits.append(
                SearchHit(entity, score + prior, self._names.get(entity, entity.id))
            )
        hits.sort(key=lambda h: (-h.score, h.entity.id))
        return hits[:top_k]


def _words(text: str) -> list[str]:
    return [t.lower() for t in iter_token_texts(text) if t[0].isalnum()]
