"""Knowledge for big data: tracking, search, question answering (section 4)."""

from .sentiment import classify_sentiment, sentiment_value
from .tracking import METHODS, ProductTracker, TrackingResult, volume_correlation
from .search import EntitySearch, SearchHit
from .qa import Answer, TemplateQA, supported_questions
from .timeline import TimelineEvent, concurrent_events, events_in_year, timeline_of
from .hybrid_qa import HybridAnswer, HybridQA
from .summarize import EntitySummarizer, ScoredSentence

__all__ = [
    "classify_sentiment",
    "sentiment_value",
    "METHODS",
    "ProductTracker",
    "TrackingResult",
    "volume_correlation",
    "EntitySearch",
    "SearchHit",
    "Answer",
    "TemplateQA",
    "supported_questions",
    "TimelineEvent",
    "concurrent_events",
    "events_in_year",
    "timeline_of",
    "HybridAnswer",
    "HybridQA",
    "EntitySummarizer",
    "ScoredSentence",
]
