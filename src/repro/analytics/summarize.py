"""Entity-aware extractive summarization.

"Text summarization" is one of the knowledge-centric services the tutorial
lists in its opening section.  The knowledge angle: a sentence is worth
keeping in a summary of entity X when it mentions X *and* connects X to
entities the KB knows to be related (employer, spouse, birthplace) — pure
frequency-based summarizers have no access to that signal.

The summarizer scores each sentence by target-mention presence, the
KB-relatedness of its co-mentioned entities, fact density, and brevity,
then picks the top sentences greedily with a redundancy penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..kb import Entity, TripleStore
from ..extraction.resolution import NameResolver
from ..nlp.gazetteer import Gazetteer
from ..nlp.pipeline import analyze


@dataclass(frozen=True, slots=True)
class ScoredSentence:
    """One candidate sentence with its salience score."""

    text: str
    score: float
    mentions_target: bool


class EntitySummarizer:
    """Pick the most entity-salient sentences from a set."""

    def __init__(
        self,
        kb: TripleStore,
        resolver: NameResolver,
        relatedness_weight: float = 1.0,
        fact_density_weight: float = 0.3,
        redundancy_penalty: float = 0.9,
    ) -> None:
        self.kb = kb
        self.resolver = resolver
        self.relatedness_weight = relatedness_weight
        self.fact_density_weight = fact_density_weight
        self.redundancy_penalty = redundancy_penalty
        self._gazetteer: Gazetteer = resolver.to_gazetteer()
        self._neighbors: dict[Entity, set[Entity]] = {}

    def _related(self, entity: Entity) -> set[Entity]:
        cached = self._neighbors.get(entity)
        if cached is not None:
            return cached
        related: set[Entity] = set()
        for triple in self.kb.match(subject=entity):
            if isinstance(triple.object, Entity):
                related.add(triple.object)
        for triple in self.kb.match(obj=entity):
            if isinstance(triple.subject, Entity):
                related.add(triple.subject)
        self._neighbors[entity] = related
        return related

    def score_sentence(self, text: str, target: Entity) -> ScoredSentence:
        """The salience of one sentence for the target entity."""
        analysis = analyze(text, self._gazetteer)
        entities = set()
        for mention in analysis.mentions:
            resolved = self.resolver.resolve(mention.text)
            if resolved is not None:
                entities.add(resolved)
        mentions_target = target in entities
        score = 1.0 if mentions_target else 0.0
        related = self._related(target)
        others = entities - {target}
        if others:
            overlap = len(others & related) / len(others)
            score += self.relatedness_weight * overlap
        score += self.fact_density_weight * min(len(others), 3)
        score -= 0.01 * max(len(analysis.tokens) - 20, 0)  # brevity nudge
        return ScoredSentence(text, score, mentions_target)

    def summarize(
        self,
        sentences: Iterable[str],
        target: Entity,
        max_sentences: int = 3,
    ) -> list[ScoredSentence]:
        """A greedy, redundancy-penalized extractive summary."""
        scored = [self.score_sentence(text, target) for text in sentences]
        scored = [s for s in scored if s.score > 0.0]
        chosen: list[ScoredSentence] = []
        remaining = sorted(scored, key=lambda s: (-s.score, s.text))
        chosen_words: set[str] = set()
        while remaining and len(chosen) < max_sentences:
            best: Optional[tuple[float, ScoredSentence]] = None
            for sentence in remaining:
                words = {w.lower() for w in sentence.text.split()}
                overlap = (
                    len(words & chosen_words) / len(words) if words else 0.0
                )
                # Multiplicative: an exact duplicate of a chosen sentence
                # keeps almost none of its score.
                adjusted = sentence.score * (1.0 - self.redundancy_penalty * overlap)
                if best is None or adjusted > best[0]:
                    best = (adjusted, sentence)
            assert best is not None
            chosen.append(best[1])
            chosen_words |= {w.lower() for w in best[1].text.split()}
            remaining.remove(best[1])
        return chosen
