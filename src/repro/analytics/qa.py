"""Template-based question answering over the knowledge base.

Deep question answering over entities and relations is one of the
knowledge-centric services the tutorial motivates (IBM Watson being the
flagship example).  This module implements the classic template layer:
question patterns compile to KB lookups, entity mentions in the question
resolve through the name dictionary, and answers come back as entity
labels or literal values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..kb import Entity, Literal, Relation, TripleStore, ns
from ..world import schema as ws
from ..extraction.resolution import NameResolver


@dataclass(frozen=True, slots=True)
class Answer:
    """One answer with its supporting fact."""

    text: str
    entity: Optional[Entity]
    relation: Relation
    confidence: float


#: (question regex, relation, direction). Forward: answer = object of
#: (question entity, relation, ?); inverse: answer = subject of (?, relation,
#: question entity).
_TEMPLATES: tuple[tuple[re.Pattern, Relation, str], ...] = (
    (re.compile(r"^where was (?P<x>.+) born\?$", re.I), ws.BORN_IN, "forward"),
    (re.compile(r"^when was (?P<x>.+) born\?$", re.I), ws.BIRTH_YEAR, "forward"),
    (re.compile(r"^where did (?P<x>.+) die\?$", re.I), ws.DIED_IN, "forward"),
    (re.compile(r"^who founded (?P<x>.+)\?$", re.I), ws.FOUNDED, "inverse"),
    (re.compile(r"^what did (?P<x>.+) found\?$", re.I), ws.FOUNDED, "forward"),
    (re.compile(r"^who is the ceo of (?P<x>.+)\?$", re.I), ws.CEO_OF, "inverse"),
    (re.compile(r"^who is (?P<x>.+) married to\?$", re.I), ws.MARRIED_TO, "forward"),
    (re.compile(r"^where did (?P<x>.+) study\?$", re.I), ws.STUDIED_AT, "forward"),
    (re.compile(r"^where does (?P<x>.+) work\?$", re.I), ws.WORKS_AT, "forward"),
    (re.compile(r"^what is the capital of (?P<x>.+)\?$", re.I), ws.CAPITAL_OF, "inverse"),
    (re.compile(r"^(?:in )?which country is (?P<x>.+)\?$", re.I), ws.LOCATED_IN, "forward"),
    (re.compile(r"^where is (?P<x>.+) headquartered\?$", re.I), ws.HEADQUARTERED_IN, "forward"),
    (re.compile(r"^who wrote (?P<x>.+)\?$", re.I), ws.WROTE, "inverse"),
    (re.compile(r"^which products did (?P<x>.+) release\?$", re.I), ws.CREATED_PRODUCT, "forward"),
    (re.compile(r"^which prizes did (?P<x>.+) win\?$", re.I), ws.WON_PRIZE, "forward"),
)


#: Temporal templates: (regex with <x> and <y>, relation, direction).
#: Answers are filtered to facts whose timespan covers the asked year —
#: the "temporal scope of facts" payoff of section 3's temporal harvesting.
_TEMPORAL_TEMPLATES: tuple[tuple[re.Pattern, Relation, str], ...] = (
    (
        re.compile(r"^who was the ceo of (?P<x>.+) in (?P<y>\d{4})\?$", re.I),
        ws.CEO_OF,
        "inverse",
    ),
    (
        re.compile(r"^where did (?P<x>.+) work in (?P<y>\d{4})\?$", re.I),
        ws.WORKS_AT,
        "forward",
    ),
    (
        re.compile(r"^who was (?P<x>.+) married to in (?P<y>\d{4})\?$", re.I),
        ws.MARRIED_TO,
        "forward",
    ),
)


class TemplateQA:
    """Answer natural-language questions by template matching."""

    def __init__(self, kb: TripleStore, resolver: NameResolver) -> None:
        self.kb = kb
        self.resolver = resolver

    def answer(self, question: str) -> list[Answer]:
        """All answers the KB supports for a question (empty if none)."""
        question = question.strip()
        for pattern, relation, direction in _TEMPORAL_TEMPLATES:
            match = pattern.match(question)
            if match is None:
                continue
            surface = match.group("x").strip()
            entity = self.resolver.resolve(surface)
            if entity is None:
                return []
            year = int(match.group("y"))
            return self._lookup(entity, relation, direction, year=year)
        for pattern, relation, direction in _TEMPLATES:
            match = pattern.match(question)
            if match is None:
                continue
            surface = match.group("x").strip()
            entity = self.resolver.resolve(surface)
            if entity is None:
                return []
            return self._lookup(entity, relation, direction)
        return []

    def _lookup(
        self,
        entity: Entity,
        relation: Relation,
        direction: str,
        year: Optional[int] = None,
    ) -> list[Answer]:
        answers = []
        if direction == "forward":
            matched = self.kb.match(subject=entity, predicate=relation)
            pick = lambda t: t.object
        else:
            matched = self.kb.match(predicate=relation, obj=entity)
            pick = lambda t: t.subject
        for triple in matched:
            if year is not None and not triple.holds_in(year):
                continue
            answers.append(self._to_answer(pick(triple), relation, triple.confidence))
        answers.sort(key=lambda a: (-a.confidence, a.text))
        return answers

    def _to_answer(self, term, relation: Relation, confidence: float) -> Answer:
        if isinstance(term, Entity):
            labels = self.kb.labels_of(term) or [term.local_name.replace("_", " ")]
            preferred = None
            for literal in self.kb.objects(term, ns.PREF_LABEL):
                if isinstance(literal, Literal):
                    preferred = literal.value
                    break
            return Answer(preferred or labels[0], term, relation, confidence)
        if isinstance(term, Literal):
            return Answer(term.value, None, relation, confidence)
        return Answer(str(term), None, relation, confidence)


def supported_questions() -> list[str]:
    """Human-readable descriptions of the supported question templates."""
    return [pattern.pattern for pattern, __, __ in _TEMPLATES]
