"""The KB serving layer: answer queries like a production service.

The paper frames knowledge bases as assets that must *answer* analytics
queries at web scale, not just get built.  This subpackage is the read
path over a built KB:

* :class:`~repro.serving.engine.QueryEngine` — request-oriented SPO
  lookups, conjunctive joins, and top-k-by-confidence over any
  :class:`~repro.kb.engine.ReadableStore` — a mutable
  :class:`~repro.kb.store.TripleStore` (lock discipline keeps concurrent
  readers consistent with a live writer) or an immutable
  :class:`~repro.kb.segments.SegmentSnapshot` (cache misses never take
  the engine lock at all);
* :class:`~repro.serving.cache.VersionedLRUCache` — an LRU result cache
  keyed on the store's identity epoch + monotonic version, so any
  mutation invalidates stale entries atomically and a rebind to a
  different store can never collide with the old store's versions;
* :class:`~repro.serving.http.KBServer` — a stdlib ``http.server`` front
  end (``repro serve``) with a fixed handler-thread pool and JSON
  endpoints ``/lookup``, ``/query``, ``/topk``, ``/healthz``, ``/metrics``.
"""

from .cache import MISS, VersionedLRUCache
from .engine import (
    BadRequest,
    QueryEngine,
    canonical_triple_key,
    parse_patterns,
    parse_slot,
    parse_term,
    triple_payload,
)
from .http import (
    DEFAULT_SERVER_WORKERS,
    KBServer,
    dumps,
    resolve_server_workers,
    serve_kb,
)

__all__ = [
    "MISS",
    "VersionedLRUCache",
    "BadRequest",
    "QueryEngine",
    "canonical_triple_key",
    "parse_patterns",
    "parse_slot",
    "parse_term",
    "triple_payload",
    "DEFAULT_SERVER_WORKERS",
    "KBServer",
    "dumps",
    "resolve_server_workers",
    "serve_kb",
]
