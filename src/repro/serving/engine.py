"""The request-oriented query engine: the serving layer's read path.

:class:`QueryEngine` wraps a :class:`~repro.kb.store.TripleStore` behind
three request shapes — SPO point/pattern ``lookup``, conjunctive ``query``
(reusing :class:`~repro.kb.query.Query`), and ``topk`` by confidence — and
memoizes every answer in a :class:`~repro.serving.cache.VersionedLRUCache`
keyed on the store's monotonic version, so any mutation atomically
invalidates stale entries (see the cache module docstring).

Concurrency contract: against a **mutable** store, reads that miss the
cache and *all* writes serialize on one engine lock, so a computed result
always reflects a single store version ``v`` and is returned tagged
``kb_version = v``; cache hits bypass the lock entirely.  Every response's
``kb_version`` is >= the store version observable when the request
started (no stale reads), and a multi-triple :meth:`add_all` is atomic —
a conjunctive query sees all of the batch or none of it (no torn joins).
Against an **immutable** store (a segment snapshot, ``mutable = False``)
there is nothing to serialize with: cache misses compute without taking
the engine lock at all, so concurrent cold reads never queue behind one
another, and writes raise
:class:`~repro.kb.engine.ReadOnlyStoreError`.

Every response carries the store's identity pair — ``kb_epoch`` (the
content-chain digest) and ``kb_version`` — and the result cache is keyed
on both, so :meth:`rebind`-ing the engine to a ``copy()``, ``filtered()``
view, or freshly loaded store can never serve another store's cached
answers: a different history means a different epoch (and a rebind to an
identical-history store deliberately keeps the cache warm).

Payloads are plain JSON-able dicts with deterministic content: triples sort
by their canonical rdfio text key, bindings keep ``Query.run`` order (which
is hash-seed independent per the determinism work), and terms render via
``term_to_text``.  Serializing with ``sort_keys`` therefore yields
byte-identical responses across cold cache, warm cache, and any number of
server threads.

Telemetry: the engine keeps its own always-on counters and latency
histograms (surfaced by ``/metrics``) and, when ``repro.obs`` is enabled,
mirrors them into the observability registry as ``serve.request``,
``serve.cache.{hit,miss}``, and the ``serve.request.latency[.<endpoint>]``
histograms (milliseconds).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Optional

from ..kb.engine import ReadableStore, ReadOnlyStoreError
from ..kb.query import Pattern, Query, Slot, Var, slot_to_text
from ..kb.rdfio import term_from_text, term_to_text
from ..kb.terms import Entity, Relation, Term
from ..kb.triple import Triple
from ..obs import core as _obs
from .cache import MISS, VersionedLRUCache


class BadRequest(ValueError):
    """A malformed request (unparseable term, bad pattern shape, bad k)."""


# ------------------------------------------------------------ wire parsing


def parse_term(text: str, position: str = "s") -> Term:
    """Parse a wire-format term for the given position (``s``/``p``/``o``).

    Accepts the rdfio line syntax (``<world:X>``, ``<<rel:y>>``, quoted
    literals with ``@lang``/``^^type`` suffixes) and, for curl-friendliness,
    bare identifiers — which become a :class:`Relation` in predicate
    position and an :class:`Entity` elsewhere.
    """
    text = text.strip()
    if not text:
        raise BadRequest(f"empty term in {position!r} position")
    if text.startswith("<") or text.startswith('"'):
        try:
            term = term_from_text(text, relation_position=(position == "p"))
        except ValueError as error:
            raise BadRequest(str(error)) from error
        return term
    if text.startswith("?"):
        raise BadRequest(f"variables are not allowed here: {text!r}")
    return Relation(text) if position == "p" else Entity(text)


def parse_slot(text: str, position: str = "s") -> Slot:
    """Parse a pattern slot: ``?name`` is a variable, anything else a term."""
    if not isinstance(text, str):
        raise BadRequest(f"pattern slot must be a string, got {type(text).__name__}")
    stripped = text.strip()
    if stripped.startswith("?"):
        name = stripped[1:]
        if not name:
            raise BadRequest("variable needs a name after '?'")
        return Var(name)
    return parse_term(stripped, position)


def parse_patterns(raw: object) -> list[Pattern]:
    """Parse the JSON ``patterns`` field into :class:`Pattern` objects."""
    if not isinstance(raw, list) or not raw:
        raise BadRequest("patterns must be a non-empty list")
    patterns = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise BadRequest(f"each pattern must be a [s, p, o] list, got {item!r}")
        s, p, o = item
        patterns.append(
            Pattern(parse_slot(s, "s"), parse_slot(p, "p"), parse_slot(o, "o"))
        )
    return patterns


def triple_payload(triple: Triple) -> dict:
    """One triple as a JSON-able dict in wire-format term texts."""
    return {
        "s": term_to_text(triple.subject),
        "p": term_to_text(triple.predicate),
        "o": term_to_text(triple.object),
        "confidence": triple.confidence,
        "source": triple.source,
        "scope": None if triple.scope is None else str(triple.scope),
    }


def canonical_triple_key(triple: Triple) -> tuple[str, str, str]:
    """The canonical (s, p, o) text key triples sort by in responses."""
    return (
        term_to_text(triple.subject),
        term_to_text(triple.predicate),
        term_to_text(triple.object),
    )


# ----------------------------------------------------------------- engine


class QueryEngine:
    """A cached, lock-disciplined read/write front over one store."""

    def __init__(self, store: ReadableStore, cache_size: int = 1024) -> None:
        self._store = store
        self._cache = VersionedLRUCache(cache_size)
        # One lock for cache-miss reads and every write: a computed result
        # reflects exactly one store version, and batched writes are atomic.
        self._lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._latency: dict[str, _obs.Histogram] = {}
        self._request_counts: dict[str, int] = {}

    @property
    def store(self) -> ReadableStore:
        return self._store

    @property
    def cache(self) -> VersionedLRUCache:
        return self._cache

    @property
    def version(self) -> int:
        """The served store's current version."""
        return self._store.version

    @property
    def epoch(self) -> str:
        """The served store's identity epoch (hex)."""
        return self._store.epoch

    def rebind(self, store: ReadableStore) -> None:
        """Atomically swap the served store.

        The cache is intentionally *not* cleared: entries are keyed on
        (epoch, version), so answers from the old store can never be
        served for the new one — and a rebind to a store with the same
        mutation history (e.g. a ``copy()``) starts warm.
        """
        with self._lock:
            self._store = store

    # ------------------------------------------------------------- writes

    def _require_mutable(self) -> None:
        if not self._store.mutable:
            raise ReadOnlyStoreError(
                "engine is bound to an immutable snapshot; writes need a "
                "mutable store (rebind or load into a TripleStore)"
            )

    def add(self, triple: Triple) -> bool:
        """Add one triple under the engine lock; returns True if new."""
        self._require_mutable()
        with self._lock:
            return self._store.add(triple)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Atomically add a batch: concurrent queries see all or none."""
        self._require_mutable()
        with self._lock:
            return self._store.add_all(triples)

    def remove(self, triple: Triple) -> bool:
        """Remove one triple under the engine lock."""
        self._require_mutable()
        with self._lock:
            return self._store.remove(triple)

    def mutate(self, fn: Callable[[ReadableStore], object]) -> object:
        """Run an arbitrary store mutation atomically under the engine lock."""
        self._require_mutable()
        with self._lock:
            return fn(self._store)

    # -------------------------------------------------------------- reads

    def lookup(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> dict:
        """All triples matching an SPO pattern (None = wildcard), sorted
        by canonical triple key."""
        key = (
            "lookup",
            None if subject is None else term_to_text(subject),
            None if predicate is None else term_to_text(predicate),
            None if obj is None else term_to_text(obj),
        )

        def compute(store: ReadableStore, epoch: str, version: int) -> dict:
            triples = sorted(
                store.match(subject, predicate, obj), key=canonical_triple_key
            )
            return {
                "kb_epoch": epoch,
                "kb_version": version,
                "count": len(triples),
                "triples": [triple_payload(t) for t in triples],
            }

        return self._serve("lookup", key, compute)

    def query(
        self,
        patterns: list[Pattern],
        select: Optional[list[str]] = None,
        distinct: bool = False,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> dict:
        """Conjunctive-join bindings, in ``Query.run`` order."""
        if not patterns:
            raise BadRequest("patterns must be a non-empty list")
        names = set()
        for pattern in patterns:
            names |= pattern.variables()
        if select is not None:
            unknown = [name for name in select if name not in names]
            if unknown:
                raise BadRequest(f"select names unbound variables: {unknown}")
        if order_by is not None and order_by not in names:
            raise BadRequest(f"order_by names an unbound variable: {order_by!r}")
        if limit is not None and limit < 0:
            raise BadRequest("limit must be non-negative")
        key = (
            "query",
            tuple(
                (
                    slot_to_text(p.subject),
                    slot_to_text(p.predicate),
                    slot_to_text(p.object),
                )
                for p in patterns
            ),
            None if select is None else tuple(select),
            distinct,
            order_by,
            limit,
        )

        def compute(store: ReadableStore, epoch: str, version: int) -> dict:
            q = Query(
                patterns,
                select=select,
                distinct=distinct,
                order_by=order_by,
                limit=limit,
            )
            bindings = [
                {name: term_to_text(value) for name, value in binding.items()}
                for binding in q.run(store)
            ]
            return {
                "kb_epoch": epoch,
                "kb_version": version,
                "count": len(bindings),
                "vars": sorted(names) if select is None else list(select),
                "bindings": bindings,
            }

        return self._serve("query", key, compute)

    def topk(
        self,
        k: int,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> dict:
        """The k highest-confidence triples matching a pattern.

        Ties break deterministically on the canonical triple key, so the
        cut at rank k is stable across runs, caches, and thread counts.
        """
        if k < 1:
            raise BadRequest(f"k must be positive, got {k}")
        key = (
            "topk",
            k,
            None if subject is None else term_to_text(subject),
            None if predicate is None else term_to_text(predicate),
            None if obj is None else term_to_text(obj),
        )

        def compute(store: ReadableStore, epoch: str, version: int) -> dict:
            ranked = sorted(
                store.match(subject, predicate, obj),
                key=lambda t: (-t.confidence, canonical_triple_key(t)),
            )
            return {
                "kb_epoch": epoch,
                "kb_version": version,
                "k": k,
                "count": min(k, len(ranked)),
                "results": [triple_payload(t) for t in ranked[:k]],
            }

        return self._serve("topk", key, compute)

    # ------------------------------------------------------ JSON adapters

    def lookup_json(self, params: dict) -> dict:
        """``/lookup`` adapter: parse ``s``/``p``/``o`` query parameters."""
        def term_of(name: str, position: str) -> Optional[Term]:
            value = params.get(name)
            if value is None or value == "":
                return None
            return parse_term(value, position)

        return self.lookup(term_of("s", "s"), term_of("p", "p"), term_of("o", "o"))

    def query_json(self, payload: object) -> dict:
        """``/query`` adapter: parse the POSTed JSON body."""
        if not isinstance(payload, dict):
            raise BadRequest("query body must be a JSON object")
        unknown = set(payload) - {"patterns", "select", "distinct", "order_by", "limit"}
        if unknown:
            raise BadRequest(f"unknown query fields: {sorted(unknown)}")
        patterns = parse_patterns(payload.get("patterns"))
        select = payload.get("select")
        if select is not None:
            if not isinstance(select, list) or not all(
                isinstance(name, str) for name in select
            ):
                raise BadRequest("select must be a list of variable names")
            select = [name.lstrip("?") for name in select]
        distinct = payload.get("distinct", False)
        if not isinstance(distinct, bool):
            raise BadRequest("distinct must be a boolean")
        order_by = payload.get("order_by")
        if order_by is not None:
            if not isinstance(order_by, str):
                raise BadRequest("order_by must be a variable name")
            order_by = order_by.lstrip("?")
        limit = payload.get("limit")
        if limit is not None and (isinstance(limit, bool) or not isinstance(limit, int)):
            raise BadRequest("limit must be an integer")
        return self.query(
            patterns, select=select, distinct=distinct, order_by=order_by, limit=limit
        )

    def topk_json(self, params: dict) -> dict:
        """``/topk`` adapter: parse ``k`` plus ``s``/``p``/``o`` parameters."""
        raw_k = params.get("k", "10")
        try:
            k = int(raw_k)
        except (TypeError, ValueError):
            raise BadRequest(f"k must be an integer, got {raw_k!r}") from None

        def term_of(name: str, position: str) -> Optional[Term]:
            value = params.get(name)
            if value is None or value == "":
                return None
            return parse_term(value, position)

        return self.topk(k, term_of("s", "s"), term_of("p", "p"), term_of("o", "o"))

    # ---------------------------------------------------------- telemetry

    def healthz(self) -> dict:
        """Liveness payload: status, version, triple count."""
        return {
            "status": "ok",
            "kb_epoch": self._store.epoch,
            "kb_version": self._store.version,
            "triples": len(self._store),
        }

    def metrics(self) -> dict:
        """Cache accounting plus per-endpoint request/latency digests."""
        with self._stats_lock:
            endpoints = {
                name: {
                    "requests": self._request_counts.get(name, 0),
                    "latency_ms": histogram.summary(),
                }
                for name, histogram in self._latency.items()
            }
        return {
            "kb_epoch": self._store.epoch,
            "kb_version": self._store.version,
            "triples": len(self._store),
            "cache": self._cache.stats(),
            "endpoints": endpoints,
        }

    # ----------------------------------------------------------- internals

    def _serve(
        self,
        endpoint: str,
        key: tuple,
        compute: Callable[[ReadableStore, str, int], dict],
    ) -> dict:
        started = time.perf_counter()
        store = self._store
        epoch, version = store.epoch, store.version
        payload = self._cache.get(key, epoch, version)
        hit = payload is not MISS
        if not hit:
            if store.mutable:
                with self._lock:
                    # Re-read under the lock: a writer may have advanced
                    # (or rebind swapped) the store since the unlocked
                    # read; the result must be tagged with the identity it
                    # actually reflects.
                    store = self._store
                    epoch, version = store.epoch, store.version
                    payload = compute(store, epoch, version)
            else:
                # Immutable snapshot: nothing can move under us, so cold
                # reads run fully concurrently — no engine lock.  The
                # captured ``store`` (not ``self._store``) is what gets
                # read, so a concurrent rebind cannot poison the entry.
                payload = compute(store, epoch, version)
            # Empty answers are cached too (negative caching): repeated
            # questions about absent facts are served from memory just
            # like present ones, and accounted separately in stats.
            self._cache.put(
                key, epoch, version, payload, negative=payload.get("count") == 0
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._stats_lock:
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = _obs.Histogram(endpoint)
            histogram.observe(elapsed_ms)
            self._request_counts[endpoint] = self._request_counts.get(endpoint, 0) + 1
        if _obs.ENABLED:
            _obs.count("serve.request")
            _obs.count(f"serve.request.{endpoint}")
            _obs.count("serve.cache.hit" if hit else "serve.cache.miss")
            if hit and payload.get("count") == 0:
                _obs.count("serve.cache.negative_hit")
            _obs.observe("serve.request.latency", elapsed_ms)
            _obs.observe(f"serve.request.latency.{endpoint}", elapsed_ms)
        return payload

    def __repr__(self) -> str:
        return (
            f"QueryEngine(triples={len(self._store)}, "
            f"version={self._store.version}, cache={self._cache!r})"
        )
