"""The stdlib HTTP front end for the serving layer: ``repro serve``.

A :class:`KBServer` is an ``http.server.HTTPServer`` whose accepted
connections are handed to a **fixed pool** of handler threads through a
queue — not thread-per-request, so the thread count is an explicit,
testable contract (:func:`resolve_server_workers`, mirroring
``get_backend``: negative raises, 0 means the default, an explicit N >= 1
is honored exactly, including ``--workers 1`` = exactly one handler
thread).  Shutdown is graceful and complete: :meth:`KBServer.stop` stops
the acceptor, drains the pool with sentinels, joins every thread, and
closes the socket — no dangling threads.

Endpoints (all JSON, serialized with sorted keys and tight separators so
identical answers are byte-identical):

* ``GET /lookup?s=&p=&o=``   — SPO pattern lookup (blank/absent = wildcard)
* ``POST /query``            — conjunctive query; body ``{"patterns":
  [["?x", "rel:bornIn", "?c"], ...], "select": ..., "distinct": ...,
  "order_by": ..., "limit": ...}``
* ``GET /topk?k=&s=&p=&o=``  — top-k matching triples by confidence
* ``GET /healthz``           — liveness + KB version/size
* ``GET /metrics``           — cache accounting + per-endpoint latency

Malformed input is a 400 with ``{"error": ...}``; unknown paths are 404;
a supported path with the wrong verb is 405.
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from ..kb.engine import ReadableStore
from .engine import BadRequest, QueryEngine

#: Handler threads when ``workers == 0`` (the "serve --workers" default).
DEFAULT_SERVER_WORKERS = 8

#: Largest accepted ``/query`` body, a guard against unbounded reads.
MAX_BODY_BYTES = 1 << 20

_ENDPOINTS = {"/lookup": "GET", "/query": "POST", "/topk": "GET",
              "/healthz": "GET", "/metrics": "GET"}


def resolve_server_workers(workers: int) -> int:
    """Resolve the ``serve --workers`` spec to a thread count.

    The same contract as ``get_backend``: a negative count raises, ``0``
    means the server default (:data:`DEFAULT_SERVER_WORKERS`), and an
    explicit ``N >= 1`` is honored exactly — ``workers=1`` really serves
    with one handler thread.
    """
    if workers < 0:
        raise ValueError("workers must be non-negative (0 = server default)")
    return workers if workers else DEFAULT_SERVER_WORKERS


def dumps(payload: dict) -> bytes:
    """The canonical response encoding: sorted keys, tight separators."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


class _KBRequestHandler(BaseHTTPRequestHandler):
    """Routes the five endpoints onto the server's :class:`QueryEngine`."""

    server_version = "repro-serve/1.0"
    # One request per connection: handler threads never block holding an
    # idle keep-alive socket, so a fixed pool drains its queue and stop()
    # joins promptly.
    protocol_version = "HTTP/1.0"
    #: Socket timeout so a half-open connection cannot wedge a worker.
    timeout = 30

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def engine(self) -> QueryEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def _route(self, method: str) -> None:
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        expected = _ENDPOINTS.get(path)
        if expected is None:
            self._send(404, {"error": f"unknown path: {path}",
                             "paths": sorted(_ENDPOINTS)})
            return
        if method != expected:
            self._send(405, {"error": f"{path} expects {expected}"})
            return
        params = {
            name: values[-1]
            for name, values in parse_qs(split.query, keep_blank_values=True).items()
        }
        try:
            if path == "/healthz":
                payload = self.engine.healthz()
            elif path == "/metrics":
                payload = self.engine.metrics()
            elif path == "/lookup":
                payload = self.engine.lookup_json(params)
            elif path == "/topk":
                payload = self.engine.topk_json(params)
            else:  # /query
                payload = self.engine.query_json(self._read_json_body())
        except BadRequest as error:
            self._send(400, {"error": str(error)})
            return
        except Exception as error:  # pragma: no cover - defensive
            self._send(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._send(200, payload)

    def _read_json_body(self) -> object:
        length_text = self.headers.get("Content-Length")
        try:
            length = int(length_text) if length_text else 0
        except ValueError:
            raise BadRequest("invalid Content-Length") from None
        if length <= 0:
            raise BadRequest("a JSON body is required")
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"body too large (> {MAX_BODY_BYTES} bytes)")
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"malformed JSON body: {error}") from error

    def _send(self, status: int, payload: dict) -> None:
        body = dumps(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class KBServer(HTTPServer):
    """An HTTP server dispatching requests to a fixed handler-thread pool."""

    allow_reuse_address = True

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        verbose: bool = False,
    ) -> None:
        self.engine = engine
        self.workers = resolve_server_workers(workers)
        self.verbose = verbose
        self._queue: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._acceptor: Optional[threading.Thread] = None
        self._serving = False
        super().__init__((host, port), _KBRequestHandler)

    # HTTPServer hands each accepted connection here; instead of handling
    # it inline (or spawning a thread per request), park it on the queue
    # for the fixed pool.
    def process_request(self, request, client_address) -> None:
        self._queue.put((request, client_address))

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            request, client_address = item
            try:
                self.finish_request(request, client_address)
            except Exception:
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is the ephemeral one if 0 was asked."""
        return self.server_address[0], self.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "KBServer":
        """Spawn the handler pool and a background acceptor thread."""
        if self._serving:
            return self
        self._serving = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"kb-serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        self._acceptor = threading.Thread(
            target=self.serve_forever, name="kb-serve-acceptor", daemon=True
        )
        self._acceptor.start()
        return self

    def run_forever(self) -> None:
        """Serve on the calling thread (the CLI foreground mode)."""
        if self._serving:
            raise RuntimeError("server already started")
        self._serving = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"kb-serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        try:
            self.serve_forever()
        finally:
            self._drain_pool()
            self.server_close()
            self._serving = False

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: acceptor, pool, and socket — no thread left."""
        if not self._serving:
            return
        self.shutdown()
        if self._acceptor is not None:
            self._acceptor.join(timeout)
            self._acceptor = None
        self._drain_pool(timeout)
        self.server_close()
        self._serving = False

    def _drain_pool(self, timeout: float = 10.0) -> None:
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def __enter__(self) -> "KBServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_kb(
    store: ReadableStore,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 0,
    cache_size: int = 1024,
    verbose: bool = False,
) -> KBServer:
    """Build an engine over ``store`` and bind (but not start) a server."""
    engine = QueryEngine(store, cache_size=cache_size)
    return KBServer(engine, host=host, port=port, workers=workers, verbose=verbose)
