"""A thread-safe LRU result cache keyed on store identity + version.

Entries are stored together with the identity **epoch** and monotonic
``version`` of the store the result was computed from.  A lookup passes
the *current* epoch and version; an entry whose stored pair differs is
dropped on the spot and reported as a miss.  That single compare is what
makes invalidation atomic: the instant any store mutation bumps the
version, every previously cached entry is stale — no per-entry
bookkeeping, no invalidation scan, no window where a reader can observe
a pre-mutation answer as fresh.

Why the epoch is part of the key: ``version`` is a per-store counter
that restarts at 0 in every new store object, so a bare version compare
can collide across *different* stores — rebind an engine from store A at
version 3 to a ``copy()``/``filtered()``/freshly loaded store B that
also counts to 3 and A's cached answers would be served for B's content.
The epoch is a content-chain digest (see ``TripleStore.epoch``): equal
epoch + equal version implies identical content, so a hit is always
correct, even across rebinds — and a rebind to a store with the *same*
history (e.g. a ``copy()``) deliberately keeps the cache warm.

The cache never holds the store's lock; hits are served entirely from the
cache's own mutex, which is what lets a warm serving layer answer without
touching the store at all.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

#: Sentinel distinguishing "cache miss" from a cached None payload.
MISS = object()


class VersionedLRUCache:
    """An LRU map from request keys to (epoch, version, payload) entries.

    Entries additionally carry a **negative** flag: an empty answer
    ("no such triple") is every bit as cacheable as a full one, and in a
    serving layer fronting an incomplete KB the miss-shaped questions
    repeat at least as often as the hit-shaped ones.  Negative entries
    share the LRU with positive ones but are accounted separately
    (``negative_hits``, ``negative_entries``), so operators can see how
    much of the cache is absorbing known-empty lookups.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, tuple[str, int, Any, bool]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stale_drops = 0
        self.evictions = 0
        self.negative_hits = 0

    def get(self, key: Hashable, epoch: str, version: int) -> Any:
        """The payload cached for ``key`` at (``epoch``, ``version``), or
        :data:`MISS`.

        An entry computed against any other store identity or version is
        deleted (counted in ``stale_drops``) and reported as a miss; a
        hit refreshes the entry's LRU recency.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return MISS
            cached_epoch, cached_version, payload, negative = entry
            if cached_epoch != epoch or cached_version != version:
                del self._entries[key]
                self.stale_drops += 1
                self.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.hits += 1
            if negative:
                self.negative_hits += 1
            return payload

    def put(
        self,
        key: Hashable,
        epoch: str,
        version: int,
        payload: Any,
        negative: bool = False,
    ) -> None:
        """Cache ``payload`` for ``key`` as computed at (epoch, version).

        ``negative`` marks an empty answer, tracked separately in stats.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (epoch, version, payload, negative)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """A JSON-able snapshot of size and hit/miss accounting."""
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": hits,
                "misses": misses,
                "stale_drops": self.stale_drops,
                "evictions": self.evictions,
                "hit_rate": (hits / total) if total else 0.0,
                "negative_hits": self.negative_hits,
                "negative_entries": sum(
                    1 for entry in self._entries.values() if entry[3]
                ),
            }

    def __repr__(self) -> str:
        return (
            f"VersionedLRUCache(size={len(self)}, capacity={self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
