"""A thread-safe LRU result cache keyed on a monotonic KB version.

Entries are stored together with the :attr:`TripleStore.version` the result
was computed at.  A lookup passes the *current* version; an entry whose
stored version differs is dropped on the spot and reported as a miss.  That
single integer compare is what makes invalidation atomic: the instant any
store mutation bumps the version, every previously cached entry is stale —
no per-entry bookkeeping, no invalidation scan, no window where a reader
can observe a pre-mutation answer as fresh.

The cache never holds the store's lock; hits are served entirely from the
cache's own mutex, which is what lets a warm serving layer answer without
touching the store at all.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

#: Sentinel distinguishing "cache miss" from a cached None payload.
MISS = object()


class VersionedLRUCache:
    """An LRU map from request keys to (kb_version, payload) entries."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, tuple[int, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stale_drops = 0
        self.evictions = 0

    def get(self, key: Hashable, version: int) -> Any:
        """The payload cached for ``key`` at ``version``, or :data:`MISS`.

        An entry computed at any other version is deleted (counted in
        ``stale_drops``) and reported as a miss; a hit refreshes the
        entry's LRU recency.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return MISS
            cached_version, payload = entry
            if cached_version != version:
                del self._entries[key]
                self.stale_drops += 1
                self.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: Hashable, version: int, payload: Any) -> None:
        """Cache ``payload`` for ``key`` as computed at ``version``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (version, payload)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """A JSON-able snapshot of size and hit/miss accounting."""
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": hits,
                "misses": misses,
                "stale_drops": self.stale_drops,
                "evictions": self.evictions,
                "hit_rate": (hits / total) if total else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"VersionedLRUCache(size={len(self)}, capacity={self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
