"""The synthetic ground-truth world (the stand-in for Wikipedia/Web reality)."""

from . import schema
from .generator import World, WorldConfig, generate_world
from .names import (
    NamePool,
    identifier_from_name,
    nationality_adjective,
    person_aliases,
    pseudo_translate,
)

__all__ = [
    "schema",
    "World",
    "WorldConfig",
    "generate_world",
    "NamePool",
    "identifier_from_name",
    "nationality_adjective",
    "person_aliases",
    "pseudo_translate",
]
