"""The schema of the synthetic ground-truth world.

The world plays the role Wikipedia and the Web play for real knowledge
harvesting: a population of typed entities connected by relations.  The
schema fixes the class taxonomy (persons, organizations, locations, products,
creative works) and the relation signatures (domain, range, functionality,
temporal behaviour) that both the generator and the consistency reasoner use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kb import Entity, Literal, Relation, Triple, TripleStore, ns

_TRUE = Literal("true")


def cls(local: str) -> Entity:
    """A class entity in the ``cls:`` namespace."""
    return Entity(f"cls:{local}")


def rel(local: str) -> Relation:
    """A relation in the ``rel:`` namespace."""
    return Relation(f"rel:{local}")


# ---------------------------------------------------------------- class tree

PERSON = cls("person")
SCIENTIST = cls("scientist")
MUSICIAN = cls("musician")
POLITICIAN = cls("politician")
ENTREPRENEUR = cls("entrepreneur")
ATHLETE = cls("athlete")
WRITER = cls("writer")

ORGANIZATION = cls("organization")
COMPANY = cls("company")
UNIVERSITY = cls("university")

LOCATION = cls("location")
CITY = cls("city")
COUNTRY = cls("country")

PRODUCT = cls("product")
SMARTPHONE = cls("smartphone")

CREATIVE_WORK = cls("creative_work")
ALBUM = cls("album")
BOOK = cls("book")

PRIZE = cls("prize")

#: Child -> parent edges of the class taxonomy.
CLASS_TREE: dict[Entity, Entity] = {
    PERSON: ns.THING,
    SCIENTIST: PERSON,
    MUSICIAN: PERSON,
    POLITICIAN: PERSON,
    ENTREPRENEUR: PERSON,
    ATHLETE: PERSON,
    WRITER: PERSON,
    ORGANIZATION: ns.THING,
    COMPANY: ORGANIZATION,
    UNIVERSITY: ORGANIZATION,
    LOCATION: ns.THING,
    CITY: LOCATION,
    COUNTRY: LOCATION,
    PRODUCT: ns.THING,
    SMARTPHONE: PRODUCT,
    CREATIVE_WORK: ns.THING,
    ALBUM: CREATIVE_WORK,
    BOOK: CREATIVE_WORK,
    PRIZE: ns.THING,
}

def subclasses_of(cls: Entity) -> frozenset[Entity]:
    """The subclass closure of ``cls``: itself plus every class below it.

    Computed over :data:`CLASS_TREE`; classes outside the tree close over
    just themselves.
    """
    return _subclass_closure().get(cls, frozenset((cls,)))


_CLOSURE_CACHE: dict[Entity, frozenset[Entity]] = {}


def _subclass_closure() -> dict[Entity, frozenset[Entity]]:
    if not _CLOSURE_CACHE:
        descendants: dict[Entity, set[Entity]] = {}
        for child in CLASS_TREE:
            descendants.setdefault(child, set()).add(child)
            node = child
            while node in CLASS_TREE:
                node = CLASS_TREE[node]
                descendants.setdefault(node, set()).add(child)
        for anc, members in descendants.items():
            members.add(anc)
        _CLOSURE_CACHE.update(
            {anc: frozenset(members) for anc, members in descendants.items()}
        )
    return _CLOSURE_CACHE


#: Occupation classes a generated person may carry (besides PERSON).
OCCUPATIONS: tuple[Entity, ...] = (
    SCIENTIST,
    MUSICIAN,
    POLITICIAN,
    ENTREPRENEUR,
    ATHLETE,
    WRITER,
)

#: Class pairs that can never share an instance (used by consistency reasoning).
DISJOINT_CLASSES: tuple[tuple[Entity, Entity], ...] = (
    (PERSON, ORGANIZATION),
    (PERSON, LOCATION),
    (PERSON, PRODUCT),
    (ORGANIZATION, LOCATION),
    (ORGANIZATION, PRODUCT),
    (LOCATION, PRODUCT),
    (CITY, COUNTRY),
    (PERSON, CREATIVE_WORK),
)


# ---------------------------------------------------------------- relations

@dataclass(frozen=True, slots=True)
class RelationSpec:
    """Signature of a world relation."""

    relation: Relation
    domain: Entity
    range: Entity
    functional: bool = False
    temporal: bool = False
    symmetric: bool = False


BORN_IN = rel("bornIn")
DIED_IN = rel("diedIn")
BIRTH_YEAR = rel("birthYear")
DEATH_YEAR = rel("deathYear")
CITIZEN_OF = rel("citizenOf")
LIVES_IN = rel("livesIn")
WORKS_AT = rel("worksAt")
STUDIED_AT = rel("studiedAt")
MARRIED_TO = rel("marriedTo")
FOUNDED = rel("founded")
CEO_OF = rel("ceoOf")
WON_PRIZE = rel("wonPrize")
WROTE = rel("wrote")
RELEASED = rel("released")

HEADQUARTERED_IN = rel("headquarteredIn")
CREATED_PRODUCT = rel("createdProduct")
FOUNDING_YEAR = rel("foundingYear")

LOCATED_IN = rel("locatedIn")
CAPITAL_OF = rel("capitalOf")
POPULATION = rel("population")

RELEASE_YEAR = rel("releaseYear")
SUCCESSOR_OF = rel("successorOf")

#: Every relation of the world, with its signature.
RELATION_SPECS: tuple[RelationSpec, ...] = (
    RelationSpec(BORN_IN, PERSON, CITY, functional=True),
    RelationSpec(DIED_IN, PERSON, CITY, functional=True),
    RelationSpec(CITIZEN_OF, PERSON, COUNTRY),
    RelationSpec(LIVES_IN, PERSON, CITY, temporal=True),
    RelationSpec(WORKS_AT, PERSON, ORGANIZATION, temporal=True),
    RelationSpec(STUDIED_AT, PERSON, UNIVERSITY),
    RelationSpec(MARRIED_TO, PERSON, PERSON, temporal=True, symmetric=True),
    RelationSpec(FOUNDED, PERSON, COMPANY),
    RelationSpec(CEO_OF, PERSON, COMPANY, temporal=True),
    RelationSpec(WON_PRIZE, PERSON, PRIZE, temporal=True),
    RelationSpec(WROTE, PERSON, BOOK),
    RelationSpec(RELEASED, PERSON, ALBUM),
    RelationSpec(HEADQUARTERED_IN, COMPANY, CITY, functional=True),
    RelationSpec(CREATED_PRODUCT, COMPANY, PRODUCT),
    RelationSpec(LOCATED_IN, CITY, COUNTRY, functional=True),
    RelationSpec(CAPITAL_OF, CITY, COUNTRY, functional=True),
    RelationSpec(SUCCESSOR_OF, PRODUCT, PRODUCT, functional=True),
)

#: Attribute relations whose objects are literals.
LITERAL_RELATIONS: tuple[Relation, ...] = (
    BIRTH_YEAR,
    DEATH_YEAR,
    FOUNDING_YEAR,
    POPULATION,
    RELEASE_YEAR,
)

#: Relation pairs declared mutually exclusive for the same (s, o) pair.
DISJOINT_RELATIONS: tuple[tuple[Relation, Relation], ...] = (
    (BORN_IN, DIED_IN),
)

SPEC_BY_RELATION: dict[Relation, RelationSpec] = {
    spec.relation: spec for spec in RELATION_SPECS
}


def schema_store() -> TripleStore:
    """A store containing all class-tree and relation-signature triples."""
    store = TripleStore()
    for child, parent in CLASS_TREE.items():
        store.add(Triple(child, ns.SUBCLASS_OF, parent))
    for spec in RELATION_SPECS:
        store.add(Triple(spec.relation, ns.DOMAIN, spec.domain))
        store.add(Triple(spec.relation, ns.RANGE, spec.range))
        if spec.functional:
            store.add_fact(spec.relation, ns.FUNCTIONAL, _TRUE)
    for a, b in DISJOINT_CLASSES:
        store.add(Triple(a, ns.DISJOINT_CLASS_WITH, b))
    for r1, r2 in DISJOINT_RELATIONS:
        store.add(Triple(r1, ns.DISJOINT_WITH, r2))
    store.add(Triple(BIRTH_YEAR, ns.DOMAIN, PERSON))
    store.add_fact(BIRTH_YEAR, ns.FUNCTIONAL, _TRUE)
    store.add(Triple(DEATH_YEAR, ns.DOMAIN, PERSON))
    store.add_fact(DEATH_YEAR, ns.FUNCTIONAL, _TRUE)
    store.add(Triple(FOUNDING_YEAR, ns.DOMAIN, COMPANY))
    store.add_fact(FOUNDING_YEAR, ns.FUNCTIONAL, _TRUE)
    store.add(Triple(POPULATION, ns.DOMAIN, CITY))
    store.add(Triple(RELEASE_YEAR, ns.DOMAIN, PRODUCT))
    store.add_fact(RELEASE_YEAR, ns.FUNCTIONAL, _TRUE)
    return store
