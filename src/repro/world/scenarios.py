"""Named stress scenarios: the workload-profile layer of the synthetic world.

The tutorial's thesis is that KB construction must survive the messiness of
big data — bursty social streams, ambiguous names, conflicting and
time-varying facts, skewed language coverage.  A single pinned-seed world
exercises none of those axes deliberately, so quality regressions can hide
behind it.  This module turns the generator stack into a *scenario engine*:
each :class:`ScenarioSpec` is a named, pinned-seed bundle of world, wiki,
corpus, and social-stream configuration plus optional fault injectors, and
:func:`build_scenario` materializes it into a :class:`ScenarioBundle` — the
pages the real pipeline builds from, the gold labels it is scored against,
and measured *knobs* proving the scenario actually stresses its target axis.

Shipped profiles (:data:`SCENARIOS`):

* ``baseline`` — the nominal workload every stress knob is compared against;
* ``burst_social`` — 10–100x monthly post spikes folded into product pages,
  the delta-ingestion workload for :class:`repro.pipeline.IncrementalBuilder`;
* ``adversarial_noise`` — elevated false-fact injection (functional and
  cross-class conflicts) to stress MaxSat consistency reasoning;
* ``heavy_ambiguity`` — alias-collision-dense entity space plus short-alias
  mentions to stress NED and linkage;
* ``temporal_drift`` — facts whose truth changes across scoped spans
  (job-hopping employment chains) to stress temporal scoping;
* ``multilingual_skew`` — per-language interlanguage dropout skew to stress
  multilingual label harvesting.

Every bundle is a pure function of its spec: same profile, same bytes — in
any process, under any execution backend (the pipeline's cross-mode
contract extends to scenario builds; ``tests/test_scenarios.py`` holds the
byte-identity matrix).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Optional, Union

from ..corpus.document import Document
from ..corpus.social import SocialConfig, SocialStream, generate_stream
from ..corpus.synthesis import (
    CorpusConfig,
    corrupt_fact,
    render_fact_sentence,
    synthesize,
)
from ..corpus.templates import TEMPLATES, templates_for
from ..corpus.wiki import Wiki, WikiConfig, WikiPage, build_wiki
from ..determinism.stable import canonical_kb_lines
from ..kb import TimeSpan
from . import schema as ws
from .generator import World, WorldConfig, _add_fact, generate_world


@dataclass(frozen=True, slots=True)
class NoiseSpec:
    """Adversarial false-fact injection into wiki pages.

    For each renderable gold fact of a page's entity, with probability
    ``p_false`` a corrupted variant (object swapped via
    :func:`repro.corpus.synthesis.corrupt_fact`) is rendered as an extra
    sentence on that page.  ``p_cross_class`` splits the corruption between
    cross-class swaps (caught by type constraints) and same-class siblings
    (caught only by functionality constraints) — the two conflict families
    MaxSat reasoning must arbitrate.
    """

    seed: int = 97
    p_false: float = 0.4
    p_cross_class: float = 0.5

    def __post_init__(self) -> None:
        for name, value in (
            ("p_false", self.p_false),
            ("p_cross_class", self.p_cross_class),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


@dataclass(frozen=True, slots=True)
class DriftSpec:
    """Temporal drift: facts whose truth changes across scoped spans.

    A ``fraction`` of employed people get ``extra_spans`` additional
    WORKS_AT facts — different employers, later non-overlapping spans — so
    the same (subject, relation) pair holds different objects at different
    times.  The generator proper emits at most one employment per person,
    which is why the baseline drift knob sits at zero.
    """

    seed: int = 89
    fraction: float = 0.5
    extra_spans: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.extra_spans < 1:
            raise ValueError("extra_spans must be at least 1")


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One named, pinned-seed stress workload."""

    name: str
    description: str
    #: The subsystem axis this scenario stresses (shown by ``scenario list``).
    stresses: str
    world: WorldConfig
    wiki: WikiConfig
    corpus: CorpusConfig
    social: Optional[SocialConfig] = None
    noise: Optional[NoiseSpec] = None
    drift: Optional[DriftSpec] = None
    #: Fold the social stream's posts into the product pages (the built KB
    #: then covers the burst, and the pre-fold wiki becomes the incremental
    #: builder's seed corpus).
    fold_posts: bool = False
    #: Quality harness: also run the burst through
    #: :class:`~repro.pipeline.IncrementalBuilder` as a delta ingest and
    #: assert it is byte-identical to the one-shot build.
    incremental_burst: bool = False


@dataclass(slots=True)
class ScenarioBundle:
    """A materialized scenario: pages, gold labels, streams, and knobs."""

    spec: ScenarioSpec
    world: World
    #: The wiki the pipeline builds from (noise injected, posts folded).
    wiki: Wiki
    #: Annotated free-text corpus (document-level gold mentions/facts).
    documents: list[Document] = field(default_factory=list)
    stream: Optional[SocialStream] = None
    #: Pre-fold wiki (only when the spec folds posts): the incremental
    #: builder's seed corpus.
    base_wiki: Optional[Wiki] = None
    #: The delta batch ``attach_posts`` produced (only when folding).
    changed_pages: list[WikiPage] = field(default_factory=list)
    #: False sentences the noise injector added across all pages.
    injected_false: int = 0

    # ------------------------------------------------------------- gold

    def gold_fact_keys(self) -> frozenset:
        """(s, p, o) keys of every gold relational fact — the scoring target."""
        return frozenset(
            triple.spo()
            for triple in self.world.facts
            if triple.predicate in FACT_RELATIONS
        )

    # ------------------------------------------------------------ knobs

    def knobs(self) -> dict[str, float]:
        """Measured stress knobs — proof the scenario moves its target axis.

        * ``alias_collision_rate`` — fraction of people whose bare surname
          denotes more than one entity (NED difficulty);
        * ``surname_ambiguity_degree`` — mean number of entities a
          person's surname may denote (collision *depth*, the knob the
          ``ambiguity`` world parameter drives);
        * ``false_sentence_rate`` — fraction of gold-fact sentences on wiki
          pages that assert a false fact (reasoning difficulty);
        * ``drift_pairs`` — (subject, temporal relation) pairs holding two
          or more distinct objects across scopes (temporal difficulty);
        * ``burst_ratio`` — peak monthly post volume over the median
          (ingestion burstiness);
        * ``interlanguage_spread`` — max minus min per-language label
          coverage across pages (multilingual skew).
        """
        index = self.world.alias_index()
        people = self.world.people
        shared = 0
        degree_sum = 0.0
        for person in people:
            surname = self.world.name[person].split()[-1]
            degree = len(index.get(surname) or (person,))
            degree_sum += degree
            if degree > 1:
                shared += 1
        knobs: dict[str, float] = {
            "pages": float(len(self.wiki.pages)),
            "sentences": float(
                sum(
                    len(p.document.sentences)
                    for p in self.wiki.pages.values()
                )
            ),
            "alias_collision_rate": shared / len(people) if people else 0.0,
            "surname_ambiguity_degree": (
                degree_sum / len(people) if people else 0.0
            ),
            "false_sentence_rate": self._false_sentence_rate(),
            "drift_pairs": float(self._drift_pairs()),
            "burst_ratio": self._burst_ratio(),
            "interlanguage_spread": self._interlanguage_spread(),
        }
        return knobs

    def _false_sentence_rate(self) -> float:
        truthful = 0
        false = 0
        for page in self.wiki.pages.values():
            for sentence in page.document.sentences:
                for gold in sentence.facts:
                    if gold.truthful:
                        truthful += 1
                    else:
                        false += 1
        total = truthful + false
        return false / total if total else 0.0

    def _drift_pairs(self) -> int:
        temporal = frozenset(
            spec.relation for spec in ws.RELATION_SPECS if spec.temporal
        )
        objects_by_pair: dict[tuple, set] = {}
        for triple in self.world.facts:
            if triple.predicate in temporal and triple.scope is not None:
                key = (triple.subject, triple.predicate)
                objects_by_pair.setdefault(key, set()).add(triple.object)
        return sum(
            1 for objects in objects_by_pair.values() if len(objects) >= 2
        )

    def _burst_ratio(self) -> float:
        if self.stream is None:
            return 0.0
        months = range(len(next(iter(self.stream.gold_volume.values()), [])))
        totals = sorted(
            sum(self.stream.gold_volume[family][month]
                for family in self.stream.families)
            for month in months
        )
        if not totals:
            return 0.0
        median = totals[len(totals) // 2]
        return totals[-1] / median if median else float(totals[-1])

    def _interlanguage_spread(self) -> float:
        pages = len(self.wiki.pages)
        if not pages:
            return 0.0
        coverage = []
        for lang in ("de", "fr", "es"):
            have = sum(
                1
                for page in self.wiki.pages.values()
                if lang in page.interlanguage
            )
            coverage.append(have / pages)
        return max(coverage) - min(coverage)

    # ------------------------------------------------------ fingerprint

    def fingerprint(self) -> str:
        """A content digest of everything the scenario pins.

        Two builds of the same profile must return the same hex digest —
        the cheap, whole-bundle determinism check (pages, infoboxes,
        categories, interlanguage links, gold facts, documents, posts).
        """
        digest = hashlib.blake2b(digest_size=16)

        def feed(text: str) -> None:
            digest.update(text.encode("utf-8"))
            digest.update(b"\x00")

        for title in sorted(self.wiki.pages):
            page = self.wiki.pages[title]
            feed(f"page:{title}:{page.entity!r}")
            for sentence in page.document.sentences:
                feed(sentence.text)
            for attribute in sorted(page.infobox):
                feed(f"{attribute}={page.infobox[attribute]}")
            for category in page.categories:
                feed(f"cat:{category.name}:{category.conceptual}")
            for lang in sorted(page.interlanguage):
                feed(f"lang:{lang}:{page.interlanguage[lang]}")
            for link in page.links:
                feed(f"link:{link}")
        for line in canonical_kb_lines(self.world.facts):
            feed(line)
        for document in self.documents:
            feed(f"doc:{document.doc_id}")
            for sentence in document.sentences:
                feed(sentence.text)
        if self.stream is not None:
            for post in sorted(self.stream.posts, key=lambda p: p.post_id):
                feed(f"post:{post.post_id}:{post.month}:{post.text}")
        return digest.hexdigest()


#: Relational gold: every schema relation plus the literal attributes.
FACT_RELATIONS = frozenset(
    {spec.relation for spec in ws.RELATION_SPECS} | set(ws.LITERAL_RELATIONS)
)


# ------------------------------------------------------------- injectors


def _inject_noise(world: World, wiki: Wiki, spec: NoiseSpec) -> int:
    """Append corrupted-fact sentences to wiki pages (deterministic).

    Pages are visited in sorted-title order and each page's gold facts in
    store insertion order, so the injected sentences — and therefore the
    built KB — are a pure function of (world, wiki, spec).
    """
    rng = random.Random(spec.seed)
    injected = 0
    for title in sorted(wiki.pages):
        page = wiki.pages[title]
        facts = [
            triple
            for triple in world.facts.match(subject=page.entity)
            if triple.predicate in TEMPLATES
        ]
        for fact in facts:
            if rng.random() >= spec.p_false:
                continue
            corrupted = corrupt_fact(world, fact, rng, spec.p_cross_class)
            if corrupted is None:
                continue
            available = templates_for(fact.predicate, "hard")
            if not available:
                continue
            template = rng.choice(available)
            page.document.sentences.append(
                render_fact_sentence(
                    world, corrupted, template, rng, truthful=False
                )
            )
            injected += 1
    return injected


def _inject_drift(world: World, spec: DriftSpec) -> int:
    """Give employed people later, non-overlapping employment spans.

    Returns the number of drift facts added.  Iterates ``world.people`` in
    generation order with a dedicated seeded rng — deterministic, and
    independent of the base generator's rng stream.
    """
    rng = random.Random(spec.seed)
    employers = world.companies + world.universities
    if len(employers) < 2:
        return 0
    added = 0
    for person in world.people:
        existing = list(
            world.facts.match(subject=person, predicate=ws.WORKS_AT)
        )
        if not existing:
            continue
        if rng.random() >= spec.fraction:
            continue
        last = existing[-1]
        current = last.object
        end = last.scope.end if last.scope and last.scope.end else 1990
        for __ in range(spec.extra_spans):
            pool = [e for e in employers if e != current]
            employer = rng.choice(pool)
            begin = end + 1 + rng.randint(0, 3)
            end = begin + rng.randint(1, 8)
            _add_fact(
                world, person, ws.WORKS_AT, employer,
                scope=TimeSpan(begin, end),
            )
            current = employer
            added += 1
    return added


# -------------------------------------------------------------- registry


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="baseline",
            description=(
                "Nominal workload: modest noise, ambiguity, and social "
                "chatter — the reference point every stress knob is "
                "compared against."
            ),
            stresses="reference",
            world=WorldConfig(seed=101, n_people=48, ambiguity=0.3),
            wiki=WikiConfig(seed=103),
            corpus=CorpusConfig(seed=107, p_false=0.05),
            social=SocialConfig(
                seed=109, months=18, base_posts_per_month=20,
                release_boost=30,
            ),
        ),
        ScenarioSpec(
            name="burst_social",
            description=(
                "10-100x monthly post spikes around product releases, "
                "folded into the product pages — the delta-ingestion "
                "workload for the incremental builder."
            ),
            stresses="ingestion / IncrementalBuilder",
            world=WorldConfig(seed=211, n_people=48),
            wiki=WikiConfig(seed=213),
            corpus=CorpusConfig(seed=217),
            social=SocialConfig(
                seed=223, months=18, base_posts_per_month=8,
                release_boost=320,
            ),
            fold_posts=True,
            incremental_burst=True,
        ),
        ScenarioSpec(
            name="adversarial_noise",
            description=(
                "Half of all gold facts also appear corrupted — functional "
                "conflicts and cross-class type violations MaxSat "
                "consistency reasoning must arbitrate."
            ),
            stresses="consistency / MaxSat",
            world=WorldConfig(seed=307, n_people=48),
            wiki=WikiConfig(seed=311),
            corpus=CorpusConfig(seed=313, p_false=0.5, p_cross_class=0.5),
            noise=NoiseSpec(seed=317, p_false=0.5, p_cross_class=0.5),
        ),
        ScenarioSpec(
            name="heavy_ambiguity",
            description=(
                "Alias-collision-dense name space (0.95 ambiguity) with "
                "half of all mentions using short aliases — the NED and "
                "linkage stress case."
            ),
            stresses="NED / linkage",
            world=WorldConfig(seed=401, n_people=48, ambiguity=0.95),
            wiki=WikiConfig(seed=409, p_short_alias=0.5),
            corpus=CorpusConfig(seed=419, p_short_alias=0.5),
        ),
        ScenarioSpec(
            name="temporal_drift",
            description=(
                "Employment facts whose truth changes across scoped spans "
                "(job-hopping chains); longer pages so the drifted spans "
                "actually render."
            ),
            stresses="temporal scoping",
            world=WorldConfig(seed=503, n_people=48),
            wiki=WikiConfig(seed=509, sentences_per_page=10),
            corpus=CorpusConfig(seed=521),
            drift=DriftSpec(seed=523, fraction=0.6, extra_spans=2),
        ),
        ScenarioSpec(
            name="multilingual_skew",
            description=(
                "Skewed language editions: German labels nearly complete, "
                "Spanish nearly absent — the multilingual harvesting "
                "stress case."
            ),
            stresses="multilingual labels",
            world=WorldConfig(seed=601, n_people=48),
            wiki=WikiConfig(
                seed=607,
                interlanguage_dropout=0.2,
                interlanguage_dropout_by_lang=(
                    ("de", 0.05), ("fr", 0.5), ("es", 0.9),
                ),
            ),
            corpus=CorpusConfig(seed=613),
        ),
    )
}


def build_scenario(profile: Union[str, ScenarioSpec]) -> ScenarioBundle:
    """Materialize a scenario profile (deterministic given the spec).

    Order of operations: generate the world, inject drift (extra gold
    facts must exist before pages render), build the wiki, inject noise
    (false sentences onto built pages), synthesize the annotated document
    corpus, generate the social stream, and finally fold posts into the
    product pages when the spec asks for it — keeping the pre-fold wiki
    around as the incremental builder's seed corpus.
    """
    if isinstance(profile, str):
        try:
            spec = SCENARIOS[profile]
        except KeyError:
            known = ", ".join(sorted(SCENARIOS))
            raise KeyError(
                f"unknown scenario {profile!r} (known: {known})"
            ) from None
    else:
        spec = profile

    world = generate_world(spec.world)
    if spec.drift is not None:
        _inject_drift(world, spec.drift)
    wiki = build_wiki(world, spec.wiki)
    injected = 0
    if spec.noise is not None:
        injected = _inject_noise(world, wiki, spec.noise)
    documents = synthesize(world, spec.corpus)
    stream = (
        generate_stream(world, spec.social) if spec.social is not None else None
    )

    base_wiki: Optional[Wiki] = None
    changed_pages: list[WikiPage] = []
    if spec.fold_posts and stream is not None:
        from ..pipeline.incremental import attach_posts

        base_wiki = wiki
        changed_pages = attach_posts(wiki, stream.posts)
        folded = Wiki(
            pages=dict(wiki.pages), by_entity=dict(wiki.by_entity)
        )
        for page in changed_pages:
            folded.pages[page.title] = page
        wiki = folded

    return ScenarioBundle(
        spec=spec,
        world=world,
        wiki=wiki,
        documents=documents,
        stream=stream,
        base_wiki=base_wiki,
        changed_pages=changed_pages,
        injected_false=injected,
    )
