"""Generation of the synthetic ground-truth world.

A :class:`World` is the complete, noise-free truth: typed entities, their
relational facts (with temporal scopes), names, aliases, and multilingual
labels.  Corpus synthesis renders this truth into text (with controlled
noise); every experiment then measures its subsystem against the world's
gold facts.  Generation is fully deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..kb import (
    Entity,
    Literal,
    Relation,
    TimeSpan,
    Triple,
    TripleStore,
    ns,
    string_literal,
    year_literal,
)
from . import schema as ws
from .names import (
    LANGUAGES,
    PRODUCT_FAMILIES,
    NamePool,
    identifier_from_name,
    person_aliases,
    pseudo_translate,
)


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Size and shape parameters of a generated world."""

    seed: int = 42
    n_countries: int = 8
    n_cities: int = 30
    n_universities: int = 10
    n_companies: int = 20
    n_people: int = 120
    n_product_families: int = 2
    n_products_per_family: int = 4
    n_books: int = 12
    n_albums: int = 12
    n_prizes: int = 4
    ambiguity: float = 0.3

    def __post_init__(self) -> None:
        if self.n_countries < 1 or self.n_countries > 12:
            raise ValueError("n_countries must be between 1 and 12")
        for name in (
            "n_cities",
            "n_universities",
            "n_companies",
            "n_people",
            "n_product_families",
            "n_products_per_family",
            "n_books",
            "n_albums",
            "n_prizes",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.ambiguity <= 1.0:
            raise ValueError("ambiguity must be in [0, 1]")
        if self.n_prizes > 6:
            raise ValueError("n_prizes must be at most 6")
        if self.n_product_families > len(PRODUCT_FAMILIES):
            raise ValueError(f"at most {len(PRODUCT_FAMILIES)} product families")
        if self.n_cities < self.n_countries:
            raise ValueError("need at least one city per country")
        if self.n_companies < self.n_product_families:
            # Each family needs a distinct maker; a short company list would
            # otherwise silently truncate the family zip in _generate_products.
            raise ValueError("need at least one company per product family")


@dataclass
class World:
    """The generated ground truth.

    Attributes
    ----------
    store:
        All gold triples: schema, types, labels, facts.
    facts:
        Just the relational facts (the extraction targets), a subset view.
    name:
        Preferred English display name per entity.
    aliases:
        Surface forms a text may use for each entity.
    """

    config: WorldConfig
    store: TripleStore = field(default_factory=TripleStore)
    facts: TripleStore = field(default_factory=TripleStore)
    name: dict[Entity, str] = field(default_factory=dict)
    aliases: dict[Entity, list[str]] = field(default_factory=dict)
    people: list[Entity] = field(default_factory=list)
    cities: list[Entity] = field(default_factory=list)
    countries: list[Entity] = field(default_factory=list)
    companies: list[Entity] = field(default_factory=list)
    universities: list[Entity] = field(default_factory=list)
    products: list[Entity] = field(default_factory=list)
    books: list[Entity] = field(default_factory=list)
    albums: list[Entity] = field(default_factory=list)
    prizes: list[Entity] = field(default_factory=list)
    product_family: dict[Entity, str] = field(default_factory=dict)
    primary_class: dict[Entity, Entity] = field(default_factory=dict)

    # ------------------------------------------------------------- accessors

    def all_entities(self) -> list[Entity]:
        """Every generated (non-class) entity."""
        return (
            self.people + self.cities + self.countries + self.companies
            + self.universities + self.products + self.books + self.albums
            + self.prizes
        )

    def entities_of_class(self, cls: Entity) -> list[Entity]:
        """All entities whose primary class is (a subclass of) ``cls``.

        Subclass semantics follow the schema taxonomy: asking for
        ``ORGANIZATION`` yields companies and universities, ``PERSON`` yields
        every person regardless of occupation.  The curated per-class lists
        come first (in their generation order), so leaf-class queries return
        exactly what they always did.
        """
        closure = ws.subclasses_of(cls)
        taxonomy = {
            ws.PERSON: self.people,
            ws.CITY: self.cities,
            ws.COUNTRY: self.countries,
            ws.COMPANY: self.companies,
            ws.UNIVERSITY: self.universities,
            ws.PRODUCT: self.products,
            ws.BOOK: self.books,
            ws.ALBUM: self.albums,
            ws.PRIZE: self.prizes,
        }
        result: list[Entity] = []
        seen: set[Entity] = set()
        for tax_cls, members in taxonomy.items():
            if tax_cls in closure:
                for entity in members:
                    if entity not in seen:
                        seen.add(entity)
                        result.append(entity)
        for entity, primary in self.primary_class.items():
            if primary in closure and entity not in seen:
                seen.add(entity)
                result.append(entity)
        return result

    def fact_exists(self, subject: Entity, relation: Relation, obj) -> bool:
        """True if the (s, r, o) fact is part of the ground truth."""
        return self.facts.contains_fact(subject, relation, obj)

    def alias_index(self) -> dict[str, set[Entity]]:
        """Surface form -> set of entities it may denote (the ambiguity map)."""
        index: dict[str, set[Entity]] = {}
        for entity, forms in self.aliases.items():
            for form in forms:
                index.setdefault(form, set()).add(entity)
        return index

    def label_in(self, entity: Entity, lang: str) -> Optional[str]:
        """The entity's label in a language, if recorded."""
        for literal in self.store.objects(entity, ns.LABEL):
            if isinstance(literal, Literal) and literal.lang == lang:
                return literal.value
        return None


def _register(
    world: World,
    name: str,
    primary: Entity,
    extra_classes: tuple[Entity, ...] = (),
    aliases: Optional[list[str]] = None,
    prefix: str = "world",
) -> Entity:
    """Create an entity, its type triples, and its (multilingual) labels."""
    local = identifier_from_name(name)
    entity = Entity(f"{prefix}:{local}")
    if entity in world.name:
        # Same display name generated twice (e.g. a book title colliding
        # with another); disambiguate the identifier, keep the surface form.
        suffix = 2
        while Entity(f"{prefix}:{local}_{suffix}") in world.name:
            suffix += 1
        entity = Entity(f"{prefix}:{local}_{suffix}")
    world.name[entity] = name
    world.primary_class[entity] = primary
    world.aliases[entity] = list(dict.fromkeys(aliases or [name]))
    world.store.add(Triple(entity, ns.TYPE, primary))
    for cls in extra_classes:
        world.store.add(Triple(entity, ns.TYPE, cls))
    world.store.add(Triple(entity, ns.PREF_LABEL, string_literal(name)))
    world.store.add(Triple(entity, ns.LABEL, string_literal(name, "en")))
    for lang in LANGUAGES:
        world.store.add(
            Triple(entity, ns.LABEL, string_literal(pseudo_translate(name, lang), lang))
        )
    return entity


def _add_fact(
    world: World,
    subject: Entity,
    relation: Relation,
    obj,
    scope: Optional[TimeSpan] = None,
) -> None:
    triple = Triple(subject, relation, obj, scope=scope)
    world.store.add(triple)
    world.facts.add(triple)


def generate_world(config: Optional[WorldConfig] = None) -> World:
    """Generate a complete world from the configuration (deterministic)."""
    if config is None:
        config = WorldConfig()
    rng = random.Random(config.seed)
    pool = NamePool(config.seed + 1, config.ambiguity)
    world = World(config=config)
    world.store.merge(ws.schema_store())

    _generate_geography(world, config, rng, pool)
    _generate_organizations(world, config, rng, pool)
    _generate_products(world, config, rng)
    _generate_people(world, config, rng, pool)
    _generate_works(world, config, rng, pool)
    return world


# ------------------------------------------------------------------ stages

def _generate_geography(world, config, rng, pool) -> None:
    for __ in range(config.n_countries):
        name = pool.country_name()
        country = _register(world, name, ws.COUNTRY)
        world.countries.append(country)
    for i in range(config.n_cities):
        name = pool.city_name()
        city = _register(world, name, ws.CITY)
        world.cities.append(city)
        # Round-robin the first pass so every country gets a capital.
        country = (
            world.countries[i]
            if i < len(world.countries)
            else rng.choice(world.countries)
        )
        _add_fact(world, city, ws.LOCATED_IN, country)
        if i < len(world.countries):
            _add_fact(world, city, ws.CAPITAL_OF, country)
        population = rng.randint(20, 9_000) * 1_000
        _add_fact(world, city, ws.POPULATION, Literal(str(population), "integer"))


def _generate_organizations(world, config, rng, pool) -> None:
    for __ in range(config.n_universities):
        city = rng.choice(world.cities)
        name = pool.university_name(world.name[city])
        university = _register(world, name, ws.UNIVERSITY)
        world.universities.append(university)
        _add_fact(world, university, ws.HEADQUARTERED_IN, city)
    for __ in range(config.n_companies):
        name = pool.company_name()
        stem = name.split()[0]
        company = _register(world, name, ws.COMPANY, aliases=[name, stem])
        world.companies.append(company)
        city = rng.choice(world.cities)
        _add_fact(world, company, ws.HEADQUARTERED_IN, city)
        founding = rng.randint(1950, 2010)
        _add_fact(world, company, ws.FOUNDING_YEAR, year_literal(founding))
    for __ in range(config.n_prizes):
        prize = _register(world, pool.prize_name(), ws.PRIZE)
        world.prizes.append(prize)


def _generate_products(world, config, rng) -> None:
    """Rival product families (the "iPhone vs Galaxy" analytics workload)."""
    families = list(PRODUCT_FAMILIES[: config.n_product_families])
    makers = world.companies[: len(families)]
    for family, maker in zip(families, makers):
        base_year = rng.randint(2004, 2008)
        predecessor = None
        for generation in range(1, config.n_products_per_family + 1):
            name = f"{family} {generation}"
            product = _register(
                world,
                name,
                ws.SMARTPHONE,
                aliases=[name, family],
            )
            world.products.append(product)
            world.product_family[product] = family
            _add_fact(world, maker, ws.CREATED_PRODUCT, product)
            _add_fact(
                world, product, ws.RELEASE_YEAR,
                year_literal(base_year + 2 * (generation - 1)),
            )
            if predecessor is not None:
                _add_fact(world, product, ws.SUCCESSOR_OF, predecessor)
            predecessor = product


def _generate_people(world, config, rng, pool) -> None:
    for __ in range(config.n_people):
        given, surname = pool.person_name()
        full = f"{given} {surname}"
        occupation = rng.choice(ws.OCCUPATIONS)
        person = _register(
            world, full, ws.PERSON, extra_classes=(occupation,),
            aliases=person_aliases(given, surname),
        )
        world.people.append(person)
        world.primary_class[person] = occupation

        birth_city = rng.choice(world.cities)
        birth_year = rng.randint(1900, 1990)
        _add_fact(world, person, ws.BORN_IN, birth_city)
        _add_fact(world, person, ws.BIRTH_YEAR, year_literal(birth_year))
        birth_country = world.facts.one_object(birth_city, ws.LOCATED_IN)
        if birth_country is not None:
            _add_fact(world, person, ws.CITIZEN_OF, birth_country)

        death_year = None
        if rng.random() < 0.25:
            death_year = min(birth_year + rng.randint(40, 95), 2014)
            _add_fact(world, person, ws.DEATH_YEAR, year_literal(death_year))
            # Death city differs from the birth city so the bornIn/diedIn
            # relation-disjointness constraint is sound in this world.
            death_city = rng.choice([c for c in world.cities if c != birth_city])
            _add_fact(world, person, ws.DIED_IN, death_city)

        def life_capped(begin: int, end: int):
            # No activity outside the lifespan: scopes start after age 14
            # and end no later than the death year.
            begin = max(begin, birth_year + 14)
            if death_year is not None:
                end = min(end, death_year)
                begin = min(begin, death_year)
            return TimeSpan(begin, max(begin, end))

        if world.universities and rng.random() < 0.7:
            _add_fact(world, person, ws.STUDIED_AT, rng.choice(world.universities))

        employer_pool = world.companies + world.universities
        if employer_pool and rng.random() < 0.8:
            start = birth_year + rng.randint(20, 30)
            end = start + rng.randint(2, 30)
            _add_fact(
                world, person, ws.WORKS_AT, rng.choice(employer_pool),
                scope=life_capped(start, end),
            )

        if occupation == ws.ENTREPRENEUR and world.companies and rng.random() < 0.8:
            company = rng.choice(world.companies)
            _add_fact(world, person, ws.FOUNDED, company)
            start = birth_year + rng.randint(25, 40)
            if rng.random() < 0.6:
                _add_fact(
                    world, person, ws.CEO_OF, company,
                    scope=life_capped(start, start + rng.randint(3, 20)),
                )

        if occupation == ws.SCIENTIST and world.prizes and rng.random() < 0.6:
            year = birth_year + rng.randint(30, 60)
            prize_span = life_capped(year, year)
            _add_fact(
                world, person, ws.WON_PRIZE, rng.choice(world.prizes),
                scope=TimeSpan(prize_span.begin, prize_span.begin),
            )

    # Marriages: pair up a subset, with temporal scopes capped to both
    # spouses' lifespans.
    unmarried = list(world.people)
    rng.shuffle(unmarried)
    for i in range(0, int(len(unmarried) * 0.4) - 1, 2):
        a, b = unmarried[i], unmarried[i + 1]
        year_a = int(world.facts.one_object(a, ws.BIRTH_YEAR).value)
        year_b = int(world.facts.one_object(b, ws.BIRTH_YEAR).value)
        begin = max(year_a, year_b) + rng.randint(16, 30)
        end = begin + rng.randint(5, 50)
        for person in (a, b):
            death = world.facts.one_object(person, ws.DEATH_YEAR)
            if death is not None:
                end = min(end, int(death.value))
        if end < begin:
            continue  # one spouse died before the other came of age
        scope = TimeSpan(begin, end)
        _add_fact(world, a, ws.MARRIED_TO, b, scope=scope)
        _add_fact(world, b, ws.MARRIED_TO, a, scope=scope)


def _generate_works(world, config, rng, pool) -> None:
    writers = [p for p in world.people if world.primary_class.get(p) == ws.WRITER]
    musicians = [p for p in world.people if world.primary_class.get(p) == ws.MUSICIAN]
    for __ in range(config.n_books):
        if not writers:
            break
        place = world.name[rng.choice(world.cities)]
        book = _register(world, pool.book_title(place), ws.BOOK)
        world.books.append(book)
        _add_fact(world, rng.choice(writers), ws.WROTE, book)
    for __ in range(config.n_albums):
        if not musicians:
            break
        place = world.name[rng.choice(world.cities)]
        album = _register(world, pool.album_title(place), ws.ALBUM)
        world.albums.append(album)
        _add_fact(world, rng.choice(musicians), ws.RELEASED, album)
