"""Deterministic name generation with controlled ambiguity.

Named entity disambiguation (tutorial section 4) lives or dies on surface-
form ambiguity: "Jobs" may be Steve Jobs or another Jobs; a person and a city
can share a name.  The pools below are sized so that, at realistic world
sizes, surnames collide and some location names double as surnames — exactly
the ambiguity profile the NED experiments need, but fully under our control.

Multilingual labels are produced by a deterministic pseudo-translation per
language (suffix and vowel transformations), which gives the multilingual
harvesting experiment (E8) a gold alignment for free.
"""

from __future__ import annotations

import random

GIVEN_NAMES = (
    "Alan", "Alice", "Amara", "Anders", "Anika", "Boris", "Carla", "Chen",
    "Clara", "Daniel", "Diego", "Elena", "Emil", "Farah", "Felix", "Grace",
    "Hana", "Henrik", "Ines", "Ivan", "Jonas", "Julia", "Kamal", "Karin",
    "Lars", "Leila", "Linus", "Mara", "Marco", "Mei", "Milan", "Nadia",
    "Nils", "Noor", "Olga", "Omar", "Paula", "Pavel", "Priya", "Rafael",
    "Rania", "Rasmus", "Rosa", "Sana", "Selma", "Simon", "Sofia", "Stefan",
    "Tara", "Tomas", "Vera", "Viktor", "Wei", "Yara", "Yusuf", "Zara",
)

SURNAMES = (
    "Adler", "Almeida", "Arnold", "Becker", "Bergman", "Castell", "Dorner",
    "Ferrara", "Fischer", "Garland", "Haber", "Hoffman", "Ibarra", "Jansen",
    "Keller", "Kovacs", "Lindgren", "Marek", "Mercer", "Navarro", "Okafor",
    "Orlov", "Petrov", "Quint", "Ramos", "Richter", "Salgado", "Santos",
    "Solberg", "Tanaka", "Ulrich", "Varga", "Weber", "Winter", "Zhou",
)

#: Surnames that are ALSO city-name stems — the person/place ambiguity pool.
AMBIGUOUS_STEMS = ("Aldren", "Bellmor", "Corvain", "Delmont", "Estrel", "Fenwick")

CITY_STEMS = (
    "Aldren", "Bellmor", "Corvain", "Delmont", "Estrel", "Fenwick", "Garview",
    "Halvora", "Istrana", "Jelgrad", "Kastola", "Lorvik", "Maretta", "Norfell",
    "Ostrova", "Pellika", "Quorra", "Ravenna", "Selkirk", "Tormund", "Umbria",
    "Valmera", "Wesloch", "Yorvale", "Zembla",
)

CITY_SUFFIXES = ("", " City", "burg", " Falls", "ford", "haven", "port", "stad")

COUNTRY_STEMS = (
    "Arvandia", "Belcara", "Cestoria", "Drovana", "Elbonia", "Frentis",
    "Galdova", "Hastein", "Ivrea", "Jotunia", "Kreland", "Lorvania",
)

COMPANY_STEMS = (
    "Acumen", "Boreal", "Cinder", "Dynacore", "Everline", "Fluxon", "Gantry",
    "Helio", "Ionware", "Junction", "Kinetic", "Lumen", "Meridian", "Nimbus",
    "Orbital", "Pinnacle", "Quantum", "Rubicon", "Stellar", "Tesseract",
    "Umbra", "Vertex", "Wavefront", "Zenith",
)

COMPANY_SUFFIXES = ("Systems", "Labs", "Industries", "Corp", "Technologies", "Group")

UNIVERSITY_PATTERNS = (
    "University of {city}",
    "{city} Institute of Technology",
    "{city} Polytechnic",
)

PRIZE_NAMES = (
    "Meridian Prize", "Aster Medal", "Corona Award", "Helix Prize",
    "Lattice Medal", "Orrery Award",
)

PRODUCT_FAMILIES = ("Nova", "Pulsar", "Vega", "Orion", "Lyra", "Quasar")

BOOK_PATTERNS = (
    "The {noun} of {place}", "A History of {place}", "{noun} and {noun2}",
    "The Last {noun}", "Beyond the {noun}",
)
BOOK_NOUNS = (
    "River", "Garden", "Mirror", "Tower", "Harbor", "Meridian", "Archive",
    "Cartographer", "Winter", "Lighthouse",
)

ALBUM_PATTERNS = ("{adj} {noun}", "{noun} {number}", "Songs of {place}")
ALBUM_ADJECTIVES = ("Electric", "Silent", "Golden", "Midnight", "Paper", "Neon")

#: Languages the multilingual experiments use, besides English.
LANGUAGES = ("de", "fr", "es")

_LANG_VOWELS = {
    "de": {"a": "a", "e": "e", "i": "ie", "o": "o", "u": "u"},
    "fr": {"a": "a", "e": "é", "i": "i", "o": "au", "u": "u"},
    "es": {"a": "a", "e": "e", "i": "í", "o": "o", "u": "u"},
}
_LANG_CONSONANTS = {
    "de": {"c": "k", "v": "w", "y": "j"},
    "fr": {"k": "qu", "w": "v"},
    "es": {"th": "t", "w": "v", "k": "c"},
}
_LANG_SUFFIX = {"de": "en", "fr": "e", "es": "o"}
#: Function words translate wholesale, as real interlanguage titles do
#: ("University of X" / "Universität X" / "Université de X").
_LANG_FUNCTION_WORDS = {
    "de": {"of": "von", "the": "der", "in": "in", "and": "und", "a": "ein"},
    "fr": {"of": "de", "the": "le", "in": "en", "and": "et", "a": "un"},
    "es": {"of": "de", "the": "el", "in": "en", "and": "y", "a": "un"},
}


#: Syllables used to build exonyms (historically divergent foreign names).
_EXONYM_SYLLABLES = (
    "ba", "dor", "el", "fin", "gar", "hul", "ka", "lor", "mun", "nev",
    "or", "pra", "ril", "sten", "tor", "ul", "ver", "wen", "zar",
)
#: Fraction control: one in EXONYM_MODULUS (name, lang) pairs is an exonym.
_EXONYM_MODULUS = 4


def is_exonym(name: str, lang: str) -> bool:
    """True if this (name, language) pair uses a divergent exonym."""
    import hashlib

    digest = hashlib.blake2b(f"{name}|{lang}".encode(), digest_size=4).digest()
    return int.from_bytes(digest, "little") % _EXONYM_MODULUS == 0


def _exonym(name: str, lang: str) -> str:
    """A deterministic, string-dissimilar foreign name ("Deutschland")."""
    import hashlib

    digest = hashlib.blake2b(f"{name}|{lang}|x".encode(), digest_size=8).digest()
    syllables = []
    for i in range(3):
        syllables.append(_EXONYM_SYLLABLES[digest[i] % len(_EXONYM_SYLLABLES)])
    word = "".join(syllables).capitalize() + _LANG_SUFFIX[lang]
    return word


def pseudo_translate(name: str, lang: str) -> str:
    """A deterministic pseudo-translation of a name into ``lang``.

    Real interlanguage links connect spellings like "Munich"/"München"/
    "Múnich" and restructure multiword titles ("University of X" /
    "Université de X").  This transformation mimics both: function words
    translate wholesale; content words mutate vowels/consonants and gain a
    language-typical suffix.  A deterministic quarter of (name, language)
    pairs get an *exonym* — a historically divergent name with no string
    resemblance ("Germany"/"Deutschland") — which transliteration matching
    (E8) can never recover; only interlanguage links can.
    """
    if lang == "en":
        return name
    if lang not in _LANG_SUFFIX:
        raise ValueError(f"unsupported language: {lang!r}")
    if is_exonym(name, lang):
        return _exonym(name, lang)
    function_words = _LANG_FUNCTION_WORDS[lang]
    words = name.split(" ")
    translated_words = []
    for word in words:
        lower = word.lower()
        if lower in function_words:
            replacement = function_words[lower]
            translated_words.append(
                replacement.capitalize() if word[0].isupper() else replacement
            )
            continue
        translated_words.append(_translate_content_word(word, lang))
    return " ".join(translated_words)


def _translate_content_word(word: str, lang: str) -> str:
    if not word or not word[0].isalpha():
        return word
    vowels = _LANG_VOWELS[lang]
    consonants = _LANG_CONSONANTS[lang]
    out = []
    i = 0
    while i < len(word):
        ch = word[i]
        lower = ch.lower()
        pair = word[i:i + 2].lower()
        if pair in consonants:
            replacement = consonants[pair]
            out.append(replacement.capitalize() if ch.isupper() else replacement)
            i += 2
            continue
        if lower in consonants:
            replacement = consonants[lower]
            out.append(replacement.capitalize() if ch.isupper() else replacement)
            i += 1
            continue
        # Interior vowels mutate; edges stay, keeping the name recognizable.
        if 0 < i < len(word) - 1 and lower in vowels:
            replacement = vowels[lower]
            out.append(replacement.upper() if ch.isupper() else replacement)
            i += 1
            continue
        out.append(ch)
        i += 1
    result = "".join(out)
    if (
        result[-1:].isalpha()
        and len(result) > 3
        and not result.endswith(_LANG_SUFFIX[lang])
    ):
        result += _LANG_SUFFIX[lang]
    return result


class NamePool:
    """Draws entity names deterministically from the pools above.

    ``ambiguity`` in [0, 1] controls how aggressively surnames are reused:
    at 0 the pool cycles through all surnames before repeating; at 1 it draws
    from only a handful of surnames so collisions are everywhere.
    """

    def __init__(self, seed: int, ambiguity: float = 0.3) -> None:
        if not 0.0 <= ambiguity <= 1.0:
            raise ValueError("ambiguity must be in [0, 1]")
        self._rng = random.Random(seed)
        self.ambiguity = ambiguity
        surname_count = max(4, int(len(SURNAMES) * (1.0 - 0.85 * ambiguity)))
        self._surnames = list(SURNAMES[:surname_count]) + list(AMBIGUOUS_STEMS)
        self._used_person_names: set[str] = set()
        self._used: set[str] = set()

    def _unique(self, candidates_factory, used: set[str]) -> str:
        for __ in range(10_000):
            candidate = candidates_factory()
            if candidate not in used:
                used.add(candidate)
                return candidate
        raise RuntimeError("name pool exhausted; enlarge the pools")

    def person_name(self) -> tuple[str, str]:
        """A unique (given, surname) pair; surnames intentionally collide."""
        def make() -> str:
            given = self._rng.choice(GIVEN_NAMES)
            surname = self._rng.choice(self._surnames)
            return f"{given} {surname}"

        full = self._unique(make, self._used_person_names)
        given, __, surname = full.partition(" ")
        return given, surname

    def city_name(self) -> str:
        """A unique city name; some reuse person-surname stems on purpose."""
        def make() -> str:
            stem = self._rng.choice(CITY_STEMS)
            suffix = self._rng.choice(CITY_SUFFIXES)
            return f"{stem}{suffix}"

        return self._unique(make, self._used)

    def country_name(self) -> str:
        """A unique country name."""
        return self._unique(lambda: self._rng.choice(COUNTRY_STEMS), self._used)

    def company_name(self) -> str:
        """A unique company name like "Nimbus Systems"."""
        def make() -> str:
            stem = self._rng.choice(COMPANY_STEMS)
            suffix = self._rng.choice(COMPANY_SUFFIXES)
            return f"{stem} {suffix}"

        return self._unique(make, self._used)

    def university_name(self, city: str) -> str:
        """A unique university name anchored to a city."""
        def make() -> str:
            pattern = self._rng.choice(UNIVERSITY_PATTERNS)
            return pattern.format(city=city)

        return self._unique(make, self._used)

    def prize_name(self) -> str:
        """A unique prize name."""
        return self._unique(lambda: self._rng.choice(PRIZE_NAMES), self._used)

    def product_name(self, family: str, generation: int) -> str:
        """A product name within a family, e.g. "Nova 3"."""
        return f"{family} {generation}"

    def book_title(self, place: str) -> str:
        """A unique book title."""
        def make() -> str:
            pattern = self._rng.choice(BOOK_PATTERNS)
            return pattern.format(
                noun=self._rng.choice(BOOK_NOUNS),
                noun2=self._rng.choice(BOOK_NOUNS),
                place=place,
            )

        return self._unique(make, self._used)

    def album_title(self, place: str) -> str:
        """A unique album title."""
        def make() -> str:
            pattern = self._rng.choice(ALBUM_PATTERNS)
            return pattern.format(
                adj=self._rng.choice(ALBUM_ADJECTIVES),
                noun=self._rng.choice(BOOK_NOUNS),
                number=self._rng.randint(1, 9),
                place=place,
            )

        return self._unique(make, self._used)


def nationality_adjective(country: str) -> str:
    """A demonym-like adjective for a country name ("Arvandia" -> "Arvandian")."""
    if country.endswith("ia") or country.endswith("a"):
        return country + "n"
    if country.endswith("is"):
        return country[:-2] + "ian"
    return country + "ese"


def person_aliases(given: str, surname: str) -> list[str]:
    """Surface forms a text may use for a person, most specific first."""
    return [
        f"{given} {surname}",
        f"{given[0]}. {surname}",
        surname,
        given,
    ]


def identifier_from_name(name: str) -> str:
    """Turn a display name into an identifier-safe local name."""
    cleaned = []
    for ch in name:
        if ch.isalnum():
            cleaned.append(ch)
        elif ch in " -'.":
            cleaned.append("_")
    collapsed = "".join(cleaned)
    while "__" in collapsed:
        collapsed = collapsed.replace("__", "_")
    return collapsed.strip("_")
