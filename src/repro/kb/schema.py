"""Class taxonomy and schema reasoning over a triple store.

Every entity in a KB belongs to one or multiple classes, and those classes
are organized into a taxonomy where more special classes are subsumed by more
general ones (tutorial section 2).  :class:`Taxonomy` materializes that view
from ``rdf:type`` / ``rdfs:subClassOf`` triples and answers subsumption,
instance, and disjointness questions; it also exposes relation signatures
(domain, range, functionality) to the consistency reasoner of section 3.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Optional

from . import ns
from .terms import Entity, Relation
from .store import TripleStore


class Taxonomy:
    """A class hierarchy plus relation signatures, derived from a store.

    The taxonomy is a snapshot: build it once after the schema triples are
    loaded.  Cycles in ``subClassOf`` are tolerated (each class simply ends
    up subsuming the others in its cycle).
    """

    def __init__(self, store: TripleStore) -> None:
        self._parents: dict[Entity, set[Entity]] = defaultdict(set)
        self._children: dict[Entity, set[Entity]] = defaultdict(set)
        self._instances: dict[Entity, set[Entity]] = defaultdict(set)
        self._types: dict[Entity, set[Entity]] = defaultdict(set)
        self._domain: dict[Relation, Entity] = {}
        self._range: dict[Relation, Entity] = {}
        self._functional: set[Relation] = set()
        self._disjoint_relations: set[frozenset[Relation]] = set()
        self._disjoint_classes: set[frozenset[Entity]] = set()
        self._load(store)

    def _load(self, store: TripleStore) -> None:
        for t in store.match(None, ns.SUBCLASS_OF, None):
            if isinstance(t.subject, Entity) and isinstance(t.object, Entity):
                self._parents[t.subject].add(t.object)
                self._children[t.object].add(t.subject)
        for t in store.match(None, ns.TYPE, None):
            if isinstance(t.subject, Entity) and isinstance(t.object, Entity):
                self._instances[t.object].add(t.subject)
                self._types[t.subject].add(t.object)
        for t in store.match(None, ns.DOMAIN, None):
            if isinstance(t.subject, Relation) and isinstance(t.object, Entity):
                self._domain[t.subject] = t.object
        for t in store.match(None, ns.RANGE, None):
            if isinstance(t.subject, Relation) and isinstance(t.object, Entity):
                self._range[t.subject] = t.object
        for t in store.match(None, ns.FUNCTIONAL, None):
            if isinstance(t.subject, Relation):
                self._functional.add(t.subject)
        for t in store.match(None, ns.DISJOINT_WITH, None):
            if isinstance(t.subject, Relation) and isinstance(t.object, Relation):
                self._disjoint_relations.add(frozenset((t.subject, t.object)))
        for t in store.match(None, ns.DISJOINT_CLASS_WITH, None):
            if isinstance(t.subject, Entity) and isinstance(t.object, Entity):
                self._disjoint_classes.add(frozenset((t.subject, t.object)))

    # -------------------------------------------------------------- hierarchy

    def classes(self) -> set[Entity]:
        """Every class mentioned in the hierarchy or as a type."""
        found = set(self._parents) | set(self._children) | set(self._instances)
        for parents in self._parents.values():
            found |= parents
        return found

    def superclasses(self, cls: Entity, include_self: bool = False) -> set[Entity]:
        """The transitive superclasses of ``cls`` (BFS over subClassOf)."""
        return self._closure(cls, self._parents, include_self)

    def subclasses(self, cls: Entity, include_self: bool = False) -> set[Entity]:
        """The transitive subclasses of ``cls``."""
        return self._closure(cls, self._children, include_self)

    @staticmethod
    def _closure(start: Entity, edges: dict[Entity, set[Entity]], include_self: bool) -> set[Entity]:
        seen: set[Entity] = {start} if include_self else set()
        queue = deque(edges.get(start, ()))
        visited = {start}
        while queue:
            node = queue.popleft()
            if node in visited:
                continue
            visited.add(node)
            seen.add(node)
            queue.extend(edges.get(node, ()))
        return seen

    def is_subclass_of(self, sub: Entity, sup: Entity) -> bool:
        """True if ``sub`` is ``sup`` or a transitive subclass of it."""
        return sub == sup or sup == ns.THING or sup in self.superclasses(sub)

    # -------------------------------------------------------------- instances

    def types_of(self, entity: Entity, transitive: bool = True) -> set[Entity]:
        """The classes an entity belongs to (transitive closure by default)."""
        direct = set(self._types.get(entity, ()))
        if not transitive:
            return direct
        full = set(direct)
        for cls in direct:  # det: allow-unordered -- set union commutes
            full |= self.superclasses(cls)
        return full

    def instances_of(self, cls: Entity, transitive: bool = True) -> set[Entity]:
        """The entities of a class (including subclass instances by default)."""
        found = set(self._instances.get(cls, ()))
        if transitive:
            for sub in self.subclasses(cls):
                found |= self._instances.get(sub, set())
        return found

    def is_instance_of(self, entity: Entity, cls: Entity) -> bool:
        """True if the entity is a (transitive) instance of the class."""
        if cls == ns.THING:
            return True
        return cls in self.types_of(entity)

    # ---------------------------------------------------------------- schema

    def domain_of(self, relation: Relation) -> Optional[Entity]:
        """The declared domain class of a relation, if any."""
        return self._domain.get(relation)

    def range_of(self, relation: Relation) -> Optional[Entity]:
        """The declared range class of a relation, if any."""
        return self._range.get(relation)

    def is_functional(self, relation: Relation) -> bool:
        """True if the relation admits at most one object per subject."""
        return relation in self._functional

    def are_disjoint_relations(self, r1: Relation, r2: Relation) -> bool:
        """True if the two relations were declared mutually exclusive."""
        return frozenset((r1, r2)) in self._disjoint_relations

    def relations_with_disjointness(self) -> frozenset[Relation]:
        """Every relation that appears in some declared-disjoint pair.

        The consistency reasoner's pre-filter: facts of any other relation
        can never participate in a disjointness clause, so their (s, o)
        groups need no pairwise expansion.
        """
        members: set[Relation] = set()
        for pair in self._disjoint_relations:  # det: allow-unordered -- commutative union
            members |= pair
        return frozenset(members)

    def are_disjoint_classes(self, c1: Entity, c2: Entity) -> bool:
        """True if some declared-disjoint pair subsumes (c1, c2)."""
        ancestors1 = self.superclasses(c1, include_self=True)
        ancestors2 = self.superclasses(c2, include_self=True)
        for pair in self._disjoint_classes:  # det: allow-unordered -- symmetric membership test
            a, b = tuple(pair) if len(pair) == 2 else (next(iter(pair)),) * 2
            if (a in ancestors1 and b in ancestors2) or (b in ancestors1 and a in ancestors2):
                return True
        return False

    def type_violations(self, store: TripleStore) -> list:
        """Triples whose subject/object types violate domain/range declarations.

        Entities with *no* known type are not flagged (open-world reading).
        """
        violations = []
        for triple in store:
            relation = triple.predicate
            if not isinstance(relation, Relation):
                continue
            domain = self._domain.get(relation)
            if domain is not None and isinstance(triple.subject, Entity):
                types = self.types_of(triple.subject)
                if types and domain not in types and domain != ns.THING:
                    violations.append(triple)
                    continue
            rng = self._range.get(relation)
            if rng is not None and isinstance(triple.object, Entity):
                types = self.types_of(triple.object)
                if types and rng not in types and rng != ns.THING:
                    violations.append(triple)
        return violations


def schema_triples(
    relation: Relation,
    domain: Optional[Entity] = None,
    range_: Optional[Entity] = None,
    functional: bool = False,
) -> list:
    """Build the schema triples declaring a relation's signature."""
    from .triple import Triple
    from .terms import Literal

    triples = []
    if domain is not None:
        triples.append(Triple(relation, ns.DOMAIN, domain))
    if range_ is not None:
        triples.append(Triple(relation, ns.RANGE, range_))
    if functional:
        triples.append(Triple(relation, ns.FUNCTIONAL, Literal("true")))
    return triples
