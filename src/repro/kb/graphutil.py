"""Graph views of a triple store (networkx interoperability).

Knowledge bases are graphs; exporting the entity-to-entity facts as a
``networkx`` graph opens the whole graph-analysis toolbox (centrality,
components, shortest paths) to downstream users without any custom code.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from .terms import Entity, Relation
from .store import TripleStore


def to_networkx(
    store: TripleStore,
    relations: Optional[set[Relation]] = None,
) -> "nx.MultiDiGraph":
    """The entity-to-entity facts as a labelled multi-digraph.

    Nodes are :class:`Entity` objects; each qualifying triple becomes one
    edge with ``relation`` (the id string), ``confidence``, and ``scope``
    attributes.  Literal-valued triples are skipped; ``relations`` limits
    the export to a subset of predicates.
    """
    graph: nx.MultiDiGraph = nx.MultiDiGraph()
    for triple in store:
        predicate = triple.predicate
        if not isinstance(predicate, Relation):
            continue
        if relations is not None and predicate not in relations:
            continue
        if not isinstance(triple.subject, Entity) or not isinstance(
            triple.object, Entity
        ):
            continue
        graph.add_edge(
            triple.subject,
            triple.object,
            relation=predicate.id,
            confidence=triple.confidence,
            scope=triple.scope,
        )
    return graph


def relation_path(
    store: TripleStore, start: Entity, end: Entity
) -> Optional[list[str]]:
    """The relation labels along one shortest undirected path, or None.

    Directions are annotated: a reversed edge's label carries a ``^``
    prefix ("bornIn, ^capitalOf" reads: start --bornIn--> x <--capitalOf-- end).
    """
    graph = to_networkx(store)
    undirected = graph.to_undirected(as_view=False)
    if start not in undirected or end not in undirected:
        return None
    try:
        nodes = nx.shortest_path(undirected, start, end)
    except nx.NetworkXNoPath:
        return None
    labels: list[str] = []
    for a, b in zip(nodes, nodes[1:]):
        if graph.has_edge(a, b):
            data = next(iter(graph.get_edge_data(a, b).values()))
            labels.append(data["relation"])
        else:
            data = next(iter(graph.get_edge_data(b, a).values()))
            labels.append("^" + data["relation"])
    return labels


def degree_statistics(store: TripleStore) -> dict[str, float]:
    """Basic connectivity statistics of the entity graph."""
    graph = to_networkx(store)
    if graph.number_of_nodes() == 0:
        return {"nodes": 0, "edges": 0, "mean_degree": 0.0, "components": 0}
    degrees = [d for __, d in graph.degree()]
    undirected = graph.to_undirected(as_view=False)
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "mean_degree": sum(degrees) / len(degrees),
        "components": nx.number_connected_components(undirected),
    }
