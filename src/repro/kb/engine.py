"""The storage-engine interface behind :class:`~repro.kb.store.TripleStore`.

A *storage engine* is the thing that actually holds indexed triples; the
store is policy (versioning, epochs, observability, convenience API) over
an engine.  Two engines exist:

* :class:`InMemoryEngine` (here) — the original insertion-ordered dict
  indexes (S, P, O single-position plus SP and PO composites), mutable,
  process-local;
* :class:`~repro.kb.segments.SegmentSnapshot` — an immutable, mmap-backed
  view over on-disk sorted-segment files (SPO/POS/OSP permutations with
  per-segment bloom and min/max filters), opened lock-free so any number
  of processes can read one build concurrently.

Both satisfy the :class:`ReadableStore` protocol, which is the contract
the query layer (:mod:`repro.kb.query`) and the serving layer
(:mod:`repro.serving`) are written against: pattern ``match``/``count``,
point ``get``/``contains_fact``, iteration, and the two identity fields —
the monotonic ``version`` counter and the content-chain ``epoch`` — that
make result caching sound across engine rebinds.

Index buckets in :class:`InMemoryEngine` are insertion-ordered dicts used
as ordered sets (value always None), NOT builtin sets: ``match`` results
must iterate in an order that does not depend on the per-process
``PYTHONHASHSEED``.  The index dicts are deliberately *plain* dicts
maintained with explicit ``setdefault`` — never ``defaultdict`` — so a
stray keyed read can only raise, not auto-vivify an empty bucket that
would skew ``count()`` and bucket-size telemetry.
"""

from __future__ import annotations

from typing import Iterator, Optional, Protocol, runtime_checkable

from .terms import Resource, Term
from .triple import Triple

#: The (subject, predicate, object) key every index speaks.
SpoKey = tuple[Resource, Resource, Term]


class ReadOnlyStoreError(TypeError):
    """A mutation was attempted on an immutable store (e.g. a snapshot)."""


@runtime_checkable
class ReadableStore(Protocol):
    """The read contract shared by mutable stores and immutable snapshots.

    ``version`` is a monotonic per-store mutation counter; ``epoch`` is a
    content-chain digest (hex) that two stores share only if they reached
    identical content through an identical mutation history — the pair is
    what result caches key on.  ``mutable`` is False for snapshots, which
    lets callers (the serving engine) skip write locking entirely.
    """

    mutable: bool

    @property
    def version(self) -> int: ...

    @property
    def epoch(self) -> str: ...

    def match(
        self,
        subject: Optional[Resource] = None,
        predicate: Optional[Resource] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]: ...

    def count(
        self,
        subject: Optional[Resource] = None,
        predicate: Optional[Resource] = None,
        obj: Optional[Term] = None,
    ) -> int: ...

    def get(
        self, subject: Resource, predicate: Resource, obj: Term
    ) -> Optional[Triple]: ...

    def contains_fact(
        self, subject: Resource, predicate: Resource, obj: Term
    ) -> bool: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[Triple]: ...


class InMemoryEngine:
    """Insertion-ordered dict indexes: the mutable in-memory engine.

    Keeps one primary ``spo -> Triple`` map plus five bucket indexes so
    every triple-pattern shape resolves to a dictionary lookup rather
    than a scan.  Buckets are created on first insert (``setdefault``)
    and deleted when their last key is removed, so the index never holds
    an empty bucket — an invariant :meth:`index_stats` exposes and the
    store tests pin.
    """

    __slots__ = ("_by_spo", "_by_s", "_by_p", "_by_o", "_by_sp", "_by_po")

    def __init__(self) -> None:
        self._by_spo: dict[SpoKey, Triple] = {}
        self._by_s: dict[Resource, dict[SpoKey, None]] = {}
        self._by_p: dict[Resource, dict[SpoKey, None]] = {}
        self._by_o: dict[Term, dict[SpoKey, None]] = {}
        self._by_sp: dict[tuple[Resource, Resource], dict[SpoKey, None]] = {}
        self._by_po: dict[tuple[Resource, Term], dict[SpoKey, None]] = {}

    # ------------------------------------------------------------ primitives

    def get(self, key: SpoKey) -> Optional[Triple]:
        """The stored witness for an (s, p, o) key, or None."""
        return self._by_spo.get(key)

    def insert(self, key: SpoKey, triple: Triple) -> None:
        """Index a triple under a key known to be absent."""
        self._by_spo[key] = triple
        s, p, o = key
        self._by_s.setdefault(s, {})[key] = None
        self._by_p.setdefault(p, {})[key] = None
        self._by_o.setdefault(o, {})[key] = None
        self._by_sp.setdefault((s, p), {})[key] = None
        self._by_po.setdefault((p, o), {})[key] = None

    def replace(self, key: SpoKey, triple: Triple) -> None:
        """Swap the witness for a key known to be present (buckets keep)."""
        self._by_spo[key] = triple

    def delete(self, key: SpoKey) -> bool:
        """Drop a key from every index; True if it was present.

        Buckets that become empty are removed outright, preserving the
        no-empty-buckets invariant.
        """
        if key not in self._by_spo:
            return False
        del self._by_spo[key]
        s, p, o = key
        for index, index_key in (
            (self._by_s, s),
            (self._by_p, p),
            (self._by_o, o),
            (self._by_sp, (s, p)),
            (self._by_po, (p, o)),
        ):
            bucket = index.get(index_key)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del index[index_key]
        return True

    # ----------------------------------------------------------------- reads

    def plan(self, s, p, o) -> tuple[str, Optional[list]]:
        """(index shape, candidate keys) for a pattern; keys None = scan.

        The shape names the index that serves the query: ``spo`` (exact),
        ``sp``/``po`` (composite), ``s``/``p``/``o`` (single position),
        ``s+o`` (no composite index; the smaller of the S and O buckets is
        filtered by the other position), or ``scan`` (no binding).
        """
        if s is not None and p is not None and o is not None:
            return "spo", ([(s, p, o)] if (s, p, o) in self._by_spo else [])
        if s is not None and p is not None:
            return "sp", self._by_sp.get((s, p), ())
        if p is not None and o is not None:
            return "po", self._by_po.get((p, o), ())
        if s is not None and o is not None:
            s_keys = self._by_s.get(s, ())
            o_keys = self._by_o.get(o, ())
            small, position = (s_keys, 2) if len(s_keys) <= len(o_keys) else (o_keys, 0)
            target = o if position == 2 else s
            return "s+o", [k for k in small if k[position] == target]
        if s is not None:
            return "s", self._by_s.get(s, ())
        if p is not None:
            return "p", self._by_p.get(p, ())
        if o is not None:
            return "o", self._by_o.get(o, ())
        return "scan", None

    def triples(self) -> Iterator[Triple]:
        """All witnesses in insertion order."""
        return iter(self._by_spo.values())

    def keys(self) -> Iterator[SpoKey]:
        """All (s, p, o) keys in insertion order."""
        return iter(self._by_spo)

    def predicates(self) -> set[Resource]:
        """The set of predicates with at least one triple."""
        return set(self._by_p)

    def predicate_count(self) -> int:
        return len(self._by_p)

    def __len__(self) -> int:
        return len(self._by_spo)

    # ------------------------------------------------------------- telemetry

    def index_stats(self) -> dict[str, dict[str, int]]:
        """Bucket accounting per index: total buckets, empty buckets, and
        the largest bucket — the numbers bucket-size telemetry reports.

        ``empty`` must always be 0: buckets are created only on insert and
        removed with their last key, and reads never create them.
        """
        stats: dict[str, dict[str, int]] = {}
        for name, index in (
            ("s", self._by_s),
            ("p", self._by_p),
            ("o", self._by_o),
            ("sp", self._by_sp),
            ("po", self._by_po),
        ):
            stats[name] = {
                "buckets": len(index),
                "empty": sum(1 for bucket in index.values() if not bucket),
                "largest": max((len(b) for b in index.values()), default=0),
            }
        return stats
