"""A hash-indexed in-memory triple store.

The store is policy over a pluggable storage engine (see
:mod:`repro.kb.engine`): deduplication on the (s, p, o) key with
highest-confidence witness election, the monotonic ``version`` counter,
the content-chain ``epoch`` identity, and observability.  The default
engine is :class:`~repro.kb.engine.InMemoryEngine` — three single-position
indexes (S, P, O) and two composite indexes (SP, PO) so every
triple-pattern shape resolves to a dictionary lookup rather than a scan.
The on-disk counterpart, :class:`~repro.kb.segments.SegmentSnapshot`,
shares the read contract (:class:`~repro.kb.engine.ReadableStore`) but is
immutable.

Index buckets are insertion-ordered dicts used as ordered sets (value is
always None), NOT builtin sets: ``match`` results must iterate in an order
that does not depend on the per-process ``PYTHONHASHSEED``, because callers
feed that order into seeded RNGs (corpus synthesis) and into the KB itself.

This is the substrate everything else in the toolkit writes into: the
synthetic-world generator, every extractor, the consistency reasoner, and the
NED and linkage components all read and write :class:`TripleStore` instances.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Iterator, Optional

from .engine import InMemoryEngine
from .terms import Entity, Literal, Resource, Term
from .triple import Triple
from . import ns
from ..obs import core as _obs

#: Domain separator folded into every per-triple content hash.
_EPOCH_DOMAIN = b"repro-kb-epoch-v1:"
_EPOCH_MASK = (1 << 128) - 1

#: The epoch of an empty store (the multiset sum over no triples).
EMPTY_EPOCH = 0


def triple_content_hash(triple: Triple) -> int:
    """A 128-bit content digest of one triple (terms, confidence, source,
    scope) — the element hash of the store's multiset epoch.

    The triple's ``repr`` is a deterministic full-fidelity encoding with
    no memory addresses, so this is stable across processes and hash
    seeds.
    """
    digest = hashlib.blake2b(
        _EPOCH_DOMAIN + repr(triple).encode("utf-8"), digest_size=16
    ).digest()
    return int.from_bytes(digest, "little")


def epoch_hex(accumulator: int) -> str:
    """Render a multiset-epoch accumulator as the 32-hex wire form."""
    return f"{accumulator & _EPOCH_MASK:032x}"


class MutationCounts(int):
    """The result of a batched mutation: an ``int`` that still knows more.

    Compares and arithmetics as the number of *new* triples (the
    historical ``add_all``/``merge`` contract, so existing callers keep
    working), while exposing the mutations that int silently omitted:

    * ``new`` — triples whose (s, p, o) key was not present before;
    * ``replaced`` — duplicates that won witness election (strictly higher
      confidence) and therefore bumped ``version``;
    * ``changed`` — ``new + replaced``: every mutation that invalidated
      caches.  Callers detecting change must test this, not the int value.
    """

    new: int
    replaced: int

    def __new__(cls, new: int, replaced: int) -> "MutationCounts":
        self = super().__new__(cls, new)
        self.new = new
        self.replaced = replaced
        return self

    @property
    def changed(self) -> int:
        """Mutations that changed observable state (and bumped version)."""
        return self.new + self.replaced

    def __repr__(self) -> str:
        return f"MutationCounts(new={self.new}, replaced={self.replaced})"


class TripleStore:
    """An in-memory collection of :class:`~repro.kb.triple.Triple` objects."""

    #: Writable: the serving layer takes its engine lock only for mutable
    #: stores (snapshots set this False and are served lock-free).
    mutable = True

    def __init__(
        self,
        triples: Iterable[Triple] = (),
        engine: Optional[InMemoryEngine] = None,
    ) -> None:
        # Monotonic mutation counter: bumps on every observable change (new
        # triple, higher-confidence witness replacement, removal).  The
        # serving layer keys its result cache on (epoch, version), so a
        # match is proof a cached answer is still current.  In-memory only —
        # it never reaches the canonical serialization.
        self._version = 0
        # Identity epoch: an incrementally maintained multiset hash of the
        # store's *content* — the sum (mod 2^128) of every live triple's
        # content digest.  Adds add the digest, removes subtract it, and a
        # witness replacement swaps old for new, so two stores share an
        # epoch iff they hold identical triples, regardless of how they got
        # there.  Equal epoch therefore implies equal observable content,
        # which is what makes cached results safe across engine rebinds to
        # copies, filtered views, freshly loaded stores, and segment
        # snapshots.  Deterministic across processes (no randomness, no
        # builtin hash).
        self._epoch_acc = EMPTY_EPOCH
        self._engine = engine if engine is not None else InMemoryEngine()
        self.add_all(triples)

    # ------------------------------------------------------------------ write

    def _apply(self, triple: Triple) -> int:
        """Apply one triple; 1 = new, 2 = witness replaced, 0 = no-op."""
        key = triple.spo()
        existing = self._engine.get(key)
        if existing is not None:
            if _obs.ENABLED:
                _obs.count("kb.store.add.duplicate")
            if triple.confidence > existing.confidence:
                self._engine.replace(key, triple)
                self._version += 1
                self._epoch_acc = (
                    self._epoch_acc
                    - triple_content_hash(existing)
                    + triple_content_hash(triple)
                ) & _EPOCH_MASK
                return 2
            return 0
        self._engine.insert(key, triple)
        self._version += 1
        self._epoch_acc = (self._epoch_acc + triple_content_hash(triple)) & _EPOCH_MASK
        return 1

    def add(self, triple: Triple) -> bool:
        """Add a triple; return True if it was new.

        A duplicate (same s, p, o) replaces the stored witness only when the
        new confidence is strictly higher.
        """
        if _obs.ENABLED:
            _obs.count("kb.store.add")
        return self._apply(triple) == 1

    def add_fact(
        self,
        subject: Resource,
        predicate: Resource,
        obj: Term,
        confidence: float = 1.0,
        source: Optional[str] = None,
        scope=None,
    ) -> bool:
        """Convenience wrapper: build and add a triple in one call."""
        return self.add(Triple(subject, predicate, obj, confidence, source, scope))

    def add_all(self, triples: Iterable[Triple]) -> MutationCounts:
        """Add many triples; returns :class:`MutationCounts`.

        The returned value equals the number of *new* triples as an int
        (the historical contract) and carries ``.replaced`` — the
        higher-confidence witness replacements that also bumped
        ``version``.  Change-detecting callers must look at ``.changed``:
        a batch of replacements returns 0 as an int yet mutated the store.
        """
        new = replaced = 0
        for triple in triples:
            if _obs.ENABLED:
                _obs.count("kb.store.add")
            outcome = self._apply(triple)
            if outcome == 1:
                new += 1
            elif outcome == 2:
                replaced += 1
        return MutationCounts(new, replaced)

    def remove(self, triple: Triple) -> bool:
        """Remove the fact with this triple's (s, p, o) key, if present."""
        if _obs.ENABLED:
            _obs.count("kb.store.remove")
        key = triple.spo()
        existing = self._engine.get(key)
        if existing is None:
            return False
        self._engine.delete(key)
        self._version += 1
        self._epoch_acc = (
            self._epoch_acc - triple_content_hash(existing)
        ) & _EPOCH_MASK
        return True

    def merge(self, other: "TripleStore") -> MutationCounts:
        """Add all of ``other``'s triples into this store, in canonical
        (s, p, o) key order.

        Insertion order decides index-bucket iteration order, which feeds
        KB output — so merging must not depend on the other store's
        insertion *history* (the ``candidates_to_store`` contract: a delta
        store assembled in any order merges identically).  Same result
        contract as :meth:`add_all`: int value = new triples,
        ``.replaced`` = witness replacements, ``.changed`` = both.
        """
        from ..determinism.stable import stable_str_key

        return self.add_all(
            sorted(other, key=lambda triple: stable_str_key(triple.spo()))
        )

    # ------------------------------------------------------------------- read

    @property
    def version(self) -> int:
        """The monotonic mutation counter (see ``__init__``).

        Strictly increases across adds that change state (a new triple or a
        replaced witness) and successful removes; reads never change it.
        """
        return self._version

    @property
    def epoch(self) -> str:
        """The identity epoch (32 hex digits): a multiset hash of content.

        Two stores share an epoch iff they hold identical triples —
        insertion order and mutation history don't matter, only what is
        in the store now.  A ``copy()``, ``filtered()`` view, or freshly
        loaded store that merely *counts* to the same version as another
        store carries a different epoch unless the content is genuinely
        identical — which is what keeps version-keyed result caches from
        serving stale answers across engine rebinds — while an
        identical-content store (however it was built, including a
        segment snapshot of the same KB) shares the epoch and therefore
        starts with a warm cache.
        """
        return epoch_hex(self._epoch_acc)

    @property
    def engine(self) -> InMemoryEngine:
        """The storage engine holding the indexes."""
        return self._engine

    def __len__(self) -> int:
        return len(self._engine)

    def __iter__(self) -> Iterator[Triple]:
        return self._engine.triples()

    def __contains__(self, triple: Triple) -> bool:
        return self._engine.get(triple.spo()) is not None

    def contains_fact(self, subject: Resource, predicate: Resource, obj: Term) -> bool:
        """True if a triple with this exact (s, p, o) exists."""
        return self._engine.get((subject, predicate, obj)) is not None

    def get(self, subject: Resource, predicate: Resource, obj: Term) -> Optional[Triple]:
        """The stored witness for this (s, p, o), or None."""
        return self._engine.get((subject, predicate, obj))

    def match(
        self,
        subject: Optional[Resource] = None,
        predicate: Optional[Resource] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching a pattern; None is a wildcard."""
        shape, keys = self._engine.plan(subject, predicate, obj)
        if _obs.ENABLED:
            scanned = len(self._engine) if keys is None else len(keys)
            _obs.count("kb.store.match")
            _obs.count(f"kb.store.match.shape.{shape}")
            _obs.observe("kb.store.match.scanned", scanned)
            # Per-query annotation on the innermost open span: which index
            # shape served the query and how large the scanned bucket was.
            _obs.annotate(f"store.match.{shape}")
            _obs.annotate(f"store.match.{shape}.scanned", scanned)
        if keys is None:
            yield from self._engine.triples()
            return
        for key in keys:
            triple = self._engine.get(key)
            if triple is not None:
                yield triple

    def count(
        self,
        subject: Optional[Resource] = None,
        predicate: Optional[Resource] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Number of triples matching the pattern (cheap for indexed shapes)."""
        __, keys = self._engine.plan(subject, predicate, obj)
        if keys is None:
            return len(self._engine)
        return len(keys)

    def _plan(self, s, p, o):
        """Delegates to the engine's index planner (kept for callers)."""
        return self._engine.plan(s, p, o)

    def index_stats(self) -> dict[str, dict[str, int]]:
        """Per-index bucket telemetry (buckets / empty / largest).

        ``empty`` is pinned to 0 by the engine invariant: buckets are
        created on insert only and dropped with their last key, and reads
        never auto-vivify (the indexes are plain dicts, not defaultdicts).
        """
        return self._engine.index_stats()

    # ----------------------------------------------------------- conveniences

    def objects(self, subject: Resource, predicate: Resource) -> list[Term]:
        """All objects o with (subject, predicate, o) in the store."""
        return [t.object for t in self.match(subject, predicate, None)]

    def subjects(self, predicate: Resource, obj: Term) -> list[Resource]:
        """All subjects s with (s, predicate, obj) in the store."""
        return [t.subject for t in self.match(None, predicate, obj)]

    def one_object(self, subject: Resource, predicate: Resource) -> Optional[Term]:
        """An arbitrary object for (subject, predicate), or None."""
        for t in self.match(subject, predicate, None):
            return t.object
        return None

    def predicates(self) -> set[Resource]:
        """The set of predicates that occur in the store."""
        return self._engine.predicates()

    def entities(self) -> set[Entity]:
        """Every Entity occurring in subject or object position."""
        found: set[Entity] = set()
        for s, __, o in self._engine.keys():
            if isinstance(s, Entity):
                found.add(s)
            if isinstance(o, Entity):
                found.add(o)
        return found

    def labels_of(self, subject: Resource, lang: Optional[str] = None) -> list[str]:
        """All rdfs:label strings for a subject, optionally for one language."""
        labels = []
        for term in self.objects(subject, ns.LABEL):
            if isinstance(term, Literal) and (lang is None or term.lang == lang):
                labels.append(term.value)
        return labels

    def filtered(self, keep: Callable[[Triple], bool]) -> "TripleStore":
        """A new store containing only the triples that satisfy ``keep``."""
        return TripleStore(t for t in self if keep(t))

    def with_min_confidence(self, threshold: float) -> "TripleStore":
        """A new store keeping triples with confidence >= threshold."""
        return self.filtered(lambda t: t.confidence >= threshold)

    def copy(self) -> "TripleStore":
        """A shallow copy (triples are immutable, so this is safe)."""
        return TripleStore(self)

    def __repr__(self) -> str:
        return (
            f"TripleStore(len={len(self)}, "
            f"predicates={self._engine.predicate_count()})"
        )
