"""A hash-indexed in-memory triple store.

The store keeps three single-position indexes (S, P, O) and two composite
indexes (SP, PO) so every triple-pattern shape resolves to a dictionary
lookup rather than a scan.  Triples are deduplicated on their (s, p, o) key;
when the same fact is added twice, the higher-confidence witness wins.

Index buckets are insertion-ordered dicts used as ordered sets (value is
always None), NOT builtin sets: ``match`` results must iterate in an order
that does not depend on the per-process ``PYTHONHASHSEED``, because callers
feed that order into seeded RNGs (corpus synthesis) and into the KB itself.

This is the substrate everything else in the toolkit writes into: the
synthetic-world generator, every extractor, the consistency reasoner, and the
NED and linkage components all read and write :class:`TripleStore` instances.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator, Optional

from .terms import Entity, Literal, Resource, Term
from .triple import Triple
from . import ns
from ..obs import core as _obs


class TripleStore:
    """An in-memory collection of :class:`~repro.kb.triple.Triple` objects."""

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        # Monotonic mutation counter: bumps on every observable change (new
        # triple, higher-confidence witness replacement, removal).  The
        # serving layer keys its result cache on this, so a version match is
        # proof a cached answer is still current.  In-memory only — it never
        # reaches the canonical serialization.
        self._version = 0
        # Buckets are dict[key, None] (insertion-ordered sets): iteration
        # order must be hash-seed independent — see the module docstring.
        self._by_spo: dict[tuple[Resource, Resource, Term], Triple] = {}
        self._by_s: dict[Resource, dict[tuple[Resource, Resource, Term], None]] = defaultdict(dict)
        self._by_p: dict[Resource, dict[tuple[Resource, Resource, Term], None]] = defaultdict(dict)
        self._by_o: dict[Term, dict[tuple[Resource, Resource, Term], None]] = defaultdict(dict)
        self._by_sp: dict[tuple[Resource, Resource], dict[tuple[Resource, Resource, Term], None]] = defaultdict(dict)
        self._by_po: dict[tuple[Resource, Term], dict[tuple[Resource, Resource, Term], None]] = defaultdict(dict)
        self.add_all(triples)

    # ------------------------------------------------------------------ write

    def add(self, triple: Triple) -> bool:
        """Add a triple; return True if it was new.

        A duplicate (same s, p, o) replaces the stored witness only when the
        new confidence is strictly higher.
        """
        if _obs.ENABLED:
            _obs.count("kb.store.add")
        key = triple.spo()
        existing = self._by_spo.get(key)
        if existing is not None:
            if _obs.ENABLED:
                _obs.count("kb.store.add.duplicate")
            if triple.confidence > existing.confidence:
                self._by_spo[key] = triple
                self._version += 1
            return False
        self._by_spo[key] = triple
        self._version += 1
        s, p, o = key
        self._by_s[s][key] = None
        self._by_p[p][key] = None
        self._by_o[o][key] = None
        self._by_sp[(s, p)][key] = None
        self._by_po[(p, o)][key] = None
        return True

    def add_fact(
        self,
        subject: Resource,
        predicate: Resource,
        obj: Term,
        confidence: float = 1.0,
        source: Optional[str] = None,
        scope=None,
    ) -> bool:
        """Convenience wrapper: build and add a triple in one call."""
        return self.add(Triple(subject, predicate, obj, confidence, source, scope))

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return how many were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove the fact with this triple's (s, p, o) key, if present."""
        if _obs.ENABLED:
            _obs.count("kb.store.remove")
        key = triple.spo()
        if key not in self._by_spo:
            return False
        del self._by_spo[key]
        self._version += 1
        s, p, o = key
        for index, index_key in (
            (self._by_s, s),
            (self._by_p, p),
            (self._by_o, o),
            (self._by_sp, (s, p)),
            (self._by_po, (p, o)),
        ):
            index[index_key].pop(key, None)
            if not index[index_key]:
                del index[index_key]
        return True

    def merge(self, other: "TripleStore") -> int:
        """Add all of ``other``'s triples into this store; return new count."""
        return self.add_all(other)

    # ------------------------------------------------------------------- read

    @property
    def version(self) -> int:
        """The monotonic mutation counter (see ``__init__``).

        Strictly increases across adds that change state (a new triple or a
        replaced witness) and successful removes; reads never change it.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._by_spo)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._by_spo.values())

    def __contains__(self, triple: Triple) -> bool:
        return triple.spo() in self._by_spo

    def contains_fact(self, subject: Resource, predicate: Resource, obj: Term) -> bool:
        """True if a triple with this exact (s, p, o) exists."""
        return (subject, predicate, obj) in self._by_spo

    def get(self, subject: Resource, predicate: Resource, obj: Term) -> Optional[Triple]:
        """The stored witness for this (s, p, o), or None."""
        return self._by_spo.get((subject, predicate, obj))

    def match(
        self,
        subject: Optional[Resource] = None,
        predicate: Optional[Resource] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching a pattern; None is a wildcard."""
        shape, keys = self._plan(subject, predicate, obj)
        if _obs.ENABLED:
            scanned = len(self._by_spo) if keys is None else len(keys)
            _obs.count("kb.store.match")
            _obs.count(f"kb.store.match.shape.{shape}")
            _obs.observe("kb.store.match.scanned", scanned)
            # Per-query annotation on the innermost open span: which index
            # shape served the query and how large the scanned bucket was.
            _obs.annotate(f"store.match.{shape}")
            _obs.annotate(f"store.match.{shape}.scanned", scanned)
        if keys is None:
            yield from self._by_spo.values()
            return
        for key in keys:
            triple = self._by_spo.get(key)
            if triple is not None:
                yield triple

    def count(
        self,
        subject: Optional[Resource] = None,
        predicate: Optional[Resource] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Number of triples matching the pattern (cheap for indexed shapes)."""
        __, keys = self._plan(subject, predicate, obj)
        if keys is None:
            return len(self._by_spo)
        return len(keys)

    def _plan(self, s, p, o):
        """(index shape, candidate keys) for a pattern; keys None = scan.

        The shape names the index that serves the query: ``spo`` (exact),
        ``sp``/``po`` (composite), ``s``/``p``/``o`` (single position),
        ``s+o`` (no composite index; the smaller of the S and O buckets is
        filtered by the other position), or ``scan`` (no binding).
        """
        if s is not None and p is not None and o is not None:
            return "spo", ([(s, p, o)] if (s, p, o) in self._by_spo else [])
        if s is not None and p is not None:
            return "sp", self._by_sp.get((s, p), ())
        if p is not None and o is not None:
            return "po", self._by_po.get((p, o), ())
        if s is not None and o is not None:
            s_keys = self._by_s.get(s, ())
            o_keys = self._by_o.get(o, ())
            small, position = (s_keys, 2) if len(s_keys) <= len(o_keys) else (o_keys, 0)
            target = o if position == 2 else s
            return "s+o", [k for k in small if k[position] == target]
        if s is not None:
            return "s", self._by_s.get(s, ())
        if p is not None:
            return "p", self._by_p.get(p, ())
        if o is not None:
            return "o", self._by_o.get(o, ())
        return "scan", None

    # ----------------------------------------------------------- conveniences

    def objects(self, subject: Resource, predicate: Resource) -> list[Term]:
        """All objects o with (subject, predicate, o) in the store."""
        return [t.object for t in self.match(subject, predicate, None)]

    def subjects(self, predicate: Resource, obj: Term) -> list[Resource]:
        """All subjects s with (s, predicate, obj) in the store."""
        return [t.subject for t in self.match(None, predicate, obj)]

    def one_object(self, subject: Resource, predicate: Resource) -> Optional[Term]:
        """An arbitrary object for (subject, predicate), or None."""
        for t in self.match(subject, predicate, None):
            return t.object
        return None

    def predicates(self) -> set[Resource]:
        """The set of predicates that occur in the store."""
        return set(self._by_p)

    def entities(self) -> set[Entity]:
        """Every Entity occurring in subject or object position."""
        found: set[Entity] = set()
        for s, __, o in self._by_spo:
            if isinstance(s, Entity):
                found.add(s)
            if isinstance(o, Entity):
                found.add(o)
        return found

    def labels_of(self, subject: Resource, lang: Optional[str] = None) -> list[str]:
        """All rdfs:label strings for a subject, optionally for one language."""
        labels = []
        for term in self.objects(subject, ns.LABEL):
            if isinstance(term, Literal) and (lang is None or term.lang == lang):
                labels.append(term.value)
        return labels

    def filtered(self, keep: Callable[[Triple], bool]) -> "TripleStore":
        """A new store containing only the triples that satisfy ``keep``."""
        return TripleStore(t for t in self if keep(t))

    def with_min_confidence(self, threshold: float) -> "TripleStore":
        """A new store keeping triples with confidence >= threshold."""
        return self.filtered(lambda t: t.confidence >= threshold)

    def copy(self) -> "TripleStore":
        """A shallow copy (triples are immutable, so this is safe)."""
        return TripleStore(self)

    def __repr__(self) -> str:
        return f"TripleStore(len={len(self)}, predicates={len(self._by_p)})"
