"""SPO triples with confidence, provenance, and temporal scope.

A fact in a modern knowledge base is more than a bare (subject, predicate,
object) tuple: extraction systems attach a *confidence*, provenance ties the
fact back to its *source* document, and temporal knowledge harvesting
(tutorial section 3, "Temporal and Multilingual Knowledge") attaches the
*timespan* during which the fact holds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .terms import Resource, Term


@dataclass(frozen=True, slots=True)
class TimeSpan:
    """A (possibly half-open) interval of calendar years.

    ``begin`` and ``end`` are inclusive years; ``None`` means unbounded on
    that side.  A point event (a birth, an election) is a span with
    ``begin == end``.
    """

    begin: Optional[int] = None
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.begin is not None and self.end is not None and self.begin > self.end:
            raise ValueError(f"TimeSpan begin {self.begin} after end {self.end}")

    @property
    def is_point(self) -> bool:
        """True if the span covers exactly one year."""
        return self.begin is not None and self.begin == self.end

    def contains(self, year: int) -> bool:
        """True if ``year`` falls inside this span."""
        if self.begin is not None and year < self.begin:
            return False
        if self.end is not None and year > self.end:
            return False
        return True

    def overlaps(self, other: "TimeSpan") -> bool:
        """True if the two spans share at least one year."""
        if self.end is not None and other.begin is not None and self.end < other.begin:
            return False
        if other.end is not None and self.begin is not None and other.end < self.begin:
            return False
        return True

    def intersect(self, other: "TimeSpan") -> Optional["TimeSpan"]:
        """The overlap of two spans, or ``None`` if they are disjoint."""
        if not self.overlaps(other):
            return None
        begins = [b for b in (self.begin, other.begin) if b is not None]
        ends = [e for e in (self.end, other.end) if e is not None]
        return TimeSpan(max(begins) if begins else None, min(ends) if ends else None)

    def __str__(self) -> str:
        begin = "" if self.begin is None else str(self.begin)
        end = "" if self.end is None else str(self.end)
        return f"[{begin},{end}]"


#: The unconstrained timespan (holds at all times).
ALWAYS = TimeSpan(None, None)


@dataclass(frozen=True, slots=True)
class Triple:
    """One SPO fact.

    Equality and hashing cover all attributes; the triple store deduplicates
    on the :meth:`spo` key and keeps the highest-confidence witness.
    """

    subject: Resource
    predicate: Resource
    object: Term
    confidence: float = 1.0
    source: Optional[str] = None
    scope: Optional[TimeSpan] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {self.confidence}")

    def spo(self) -> tuple[Resource, Resource, Term]:
        """The (subject, predicate, object) deduplication key."""
        return (self.subject, self.predicate, self.object)

    def with_confidence(self, confidence: float) -> "Triple":
        """A copy of this triple with a different confidence."""
        return replace(self, confidence=confidence)

    def with_scope(self, scope: TimeSpan) -> "Triple":
        """A copy of this triple with a temporal scope attached."""
        return replace(self, scope=scope)

    def holds_in(self, year: int) -> bool:
        """True if the fact holds in ``year`` (unscoped facts always hold)."""
        return self.scope is None or self.scope.contains(year)

    def __str__(self) -> str:
        parts = [str(self.subject), str(self.predicate), str(self.object)]
        if self.scope is not None:
            parts.append(str(self.scope))
        return " ".join(parts)
