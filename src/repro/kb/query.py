"""A conjunctive query engine over the triple store.

Queries are lists of triple *patterns* whose positions are either concrete
terms or :class:`Var` variables, evaluated by backtracking joins.  Pattern
order is chosen greedily by estimated selectivity (the pattern with the
fewest matching triples under the current bindings runs first), which is the
classic query-optimization heuristic and keeps joins fast on the star-shaped
queries entity-centric analytics asks (tutorial section 4, "semantic search
and analytics over entities and relations").

Example::

    q = Query([
        Pattern(Var("x"), ns.TYPE, entity("scientist", "cls")),
        Pattern(Var("x"), relation("bornIn"), Var("c")),
        Pattern(Var("c"), relation("locatedIn"), entity("Germany")),
    ])
    for binding in q.run(store):
        print(binding["x"], binding["c"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union

from .terms import Term
from .store import TripleStore
from .triple import Triple


@dataclass(frozen=True, slots=True)
class Var:
    """A query variable, identified by name."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A pattern position: either a concrete term or a variable.
Slot = Union[Term, Var]


def slot_to_text(slot: Slot) -> str:
    """The canonical text of a pattern slot: ``?name`` for variables, the
    rdfio term rendering otherwise.

    Unlike ``str()``, this is unambiguous across term kinds (``str`` renders
    ``Entity("x:a")`` and ``Relation("x:a")`` identically), so it is safe as
    a deduplication or cache key.  The serving layer keys its result cache
    on these texts.
    """
    if isinstance(slot, Var):
        return f"?{slot.name}"
    from .rdfio import term_to_text

    return term_to_text(slot)


@dataclass(frozen=True, slots=True)
class Pattern:
    """One triple pattern (subject, predicate, object) with optional Vars."""

    subject: Slot
    predicate: Slot
    object: Slot

    def variables(self) -> set[str]:
        """Names of the variables used in this pattern."""
        return {
            slot.name
            for slot in (self.subject, self.predicate, self.object)
            if isinstance(slot, Var)
        }

    def bind(self, binding: dict[str, Term]) -> "Pattern":
        """Substitute bound variables with their values."""

        def resolve(slot: Slot) -> Slot:
            if isinstance(slot, Var) and slot.name in binding:
                return binding[slot.name]
            return slot

        return Pattern(resolve(self.subject), resolve(self.predicate), resolve(self.object))


Binding = dict[str, Term]
Filter = Callable[[Binding], bool]


class Query:
    """A conjunctive query: a list of patterns plus optional filters."""

    def __init__(
        self,
        patterns: list[Pattern],
        filters: Optional[list[Filter]] = None,
        select: Optional[list[str]] = None,
        distinct: bool = False,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> None:
        if not patterns:
            raise ValueError("a query needs at least one pattern")
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        self.patterns = list(patterns)
        self.filters = list(filters or [])
        self.select = list(select) if select is not None else None
        self.distinct = distinct
        self.order_by = order_by
        self.limit = limit

    def run(self, store: TripleStore) -> list[Binding]:
        """Evaluate against a store; return the list of variable bindings.

        Solution modifiers apply in the SPARQL order: projection, DISTINCT,
        ORDER BY (lexicographic on the variable's string form), LIMIT.
        """
        results = []
        for binding in self._solve(store, self.patterns, {}):
            if all(f(binding) for f in self.filters):
                if self.select is not None:
                    binding = {name: binding[name] for name in self.select}
                results.append(binding)
        if self.distinct:
            seen = set()
            unique = []
            for binding in results:
                # slot_to_text, not str(): str renders an Entity and a
                # Relation with the same id identically, which would dedup
                # genuinely distinct solutions.
                key = tuple(sorted((k, slot_to_text(v)) for k, v in binding.items()))
                if key not in seen:
                    seen.add(key)
                    unique.append(binding)
            results = unique
        if self.order_by is not None:
            results.sort(
                key=lambda b: slot_to_text(b[self.order_by]) if self.order_by in b else ""
            )
        if self.limit is not None:
            results = results[: self.limit]
        return results

    def count(self, store: TripleStore) -> int:
        """Number of solutions (after filters)."""
        return len(self.run(store))

    def _solve(
        self, store: TripleStore, remaining: list[Pattern], binding: Binding
    ) -> Iterator[Binding]:
        if not remaining:
            yield dict(binding)
            return
        index = self._most_selective(store, remaining, binding)
        pattern = remaining[index].bind(binding)
        rest = remaining[:index] + remaining[index + 1:]
        for triple in self._matches(store, pattern):
            extended = self._unify(pattern, triple, binding)
            if extended is not None:
                yield from self._solve(store, rest, extended)

    @staticmethod
    def _most_selective(store: TripleStore, patterns: list[Pattern], binding: Binding) -> int:
        """Index of the pattern with the fewest candidate triples right now."""
        best_index, best_cost = 0, None
        for i, pattern in enumerate(patterns):
            bound = pattern.bind(binding)
            cost = store.count(
                None if isinstance(bound.subject, Var) else bound.subject,
                None if isinstance(bound.predicate, Var) else bound.predicate,
                None if isinstance(bound.object, Var) else bound.object,
            )
            if best_cost is None or cost < best_cost:
                best_index, best_cost = i, cost
        return best_index

    @staticmethod
    def _matches(store: TripleStore, pattern: Pattern) -> Iterator[Triple]:
        return store.match(
            None if isinstance(pattern.subject, Var) else pattern.subject,
            None if isinstance(pattern.predicate, Var) else pattern.predicate,
            None if isinstance(pattern.object, Var) else pattern.object,
        )

    @staticmethod
    def _unify(pattern: Pattern, triple: Triple, binding: Binding) -> Optional[Binding]:
        """Extend ``binding`` so the pattern matches the triple, or None."""
        extended = dict(binding)
        for slot, value in (
            (pattern.subject, triple.subject),
            (pattern.predicate, triple.predicate),
            (pattern.object, triple.object),
        ):
            if isinstance(slot, Var):
                bound = extended.get(slot.name)
                if bound is None:
                    extended[slot.name] = value
                elif bound != value:
                    return None
            elif slot != value:
                return None
        return extended


def ask(store: TripleStore, patterns: list[Pattern]) -> bool:
    """True if the conjunctive pattern has at least one solution."""
    for binding in Query(patterns)._solve(store, patterns, {}):
        return True
    return False
