"""Serialization of triple stores: an N-Triples-like line format and TSV.

The line format is a pragmatic subset of N-Triples extended with the
attributes our triples carry (confidence, source, temporal scope), kept
line-oriented so stores can be streamed and diffed.  A line looks like::

    <world:Steve_Jobs> <world:foundedCompany> <world:Apple> . # conf=0.93 src=doc_17 scope=[1976,1976]

Literals are quoted with backslash escaping; language tags and datatypes use
the usual ``@lang`` / ``^^type`` suffixes.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Optional, TextIO

from .terms import Entity, Literal, Relation, Term
from .triple import TimeSpan, Triple
from .store import TripleStore

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t", "\r": "\\r"}
_UNESCAPES = {v: k for k, v in _ESCAPES.items()}

_LITERAL_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"(?:@([a-zA-Z-]+)|\^\^(\w+))?$')
_SCOPE_RE = re.compile(r"^\[(-?\d*),(-?\d*)\]$")
# Annotations are emitted in conf / src / scope order; conf and scope values
# never contain spaces, so a source *may* (it is the document title) and
# still parse unambiguously as the lazy middle capture.
_ANNOTATION_RE = re.compile(
    r"^(?:conf=(?P<conf>\S+))?\s*"
    r"(?:src=(?P<src>.*?))?\s*"
    r"(?:scope=(?P<scope>\[[^\]]*\]))?$"
)


def _escape(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in value)


def _unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        two = value[i:i + 2]
        if two in _UNESCAPES:
            out.append(_UNESCAPES[two])
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def term_to_text(term: Term) -> str:
    """Render a term in the line format.

    Relations use ``<<id>>`` so a relation in subject or object position
    (schema triples) round-trips with its type intact.
    """
    if isinstance(term, Relation):
        return f"<<{term.id}>>"
    if isinstance(term, Entity):
        return f"<{term.id}>"
    if isinstance(term, Literal):
        body = f'"{_escape(term.value)}"'
        if term.lang:
            return f"{body}@{term.lang}"
        if term.datatype != "string":
            return f"{body}^^{term.datatype}"
        return body
    raise TypeError(f"not a term: {term!r}")


def term_from_text(text: str, relation_position: bool = False) -> Term:
    """Parse a term; ``relation_position`` chooses Relation over Entity."""
    text = text.strip()
    if text.startswith("<<") and text.endswith(">>"):
        return Relation(text[2:-2])
    if text.startswith("<") and text.endswith(">"):
        identifier = text[1:-1]
        return Relation(identifier) if relation_position else Entity(identifier)
    match = _LITERAL_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse term: {text!r}")
    value, lang, datatype = match.groups()
    return Literal(_unescape(value), datatype or "string", lang)


def annotations_to_text(triple: Triple) -> str:
    """The annotation suffix (confidence/source/scope) as canonical text.

    Empty string when every attribute is at its default — the same
    predicate the line format uses to decide whether to emit a ``# ...``
    comment, reused verbatim by the segment record format so both
    serializations stay in lock-step.
    """
    annotations = []
    if triple.confidence != 1.0:
        annotations.append(f"conf={triple.confidence:.6g}")
    if triple.source is not None:
        annotations.append(f"src={triple.source}")
    if triple.scope is not None:
        annotations.append(f"scope={triple.scope}")
    return " ".join(annotations)


def triple_from_parts(
    subject_text: str,
    predicate_text: str,
    object_text: str,
    annotation_text: str = "",
) -> Triple:
    """Build a triple from term texts plus an annotation suffix.

    The inverse of (``term_to_text`` × 3, :func:`annotations_to_text`);
    segment records store exactly these four strings.
    """
    subject = term_from_text(subject_text)
    predicate = term_from_text(predicate_text, relation_position=True)
    obj = term_from_text(object_text)
    if not isinstance(subject, (Entity, Relation)):
        raise ValueError(f"literal in subject position: {subject_text!r}")
    confidence, source, scope = 1.0, None, None
    matched = _ANNOTATION_RE.match(annotation_text.strip())
    if matched is not None:
        if matched.group("conf") is not None:
            confidence = float(matched.group("conf"))
        if matched.group("src") is not None:
            source = matched.group("src")
        if matched.group("scope") is not None:
            scope = _parse_scope(matched.group("scope"))
    else:
        # Tolerant fallback for hand-written annotations in any order —
        # sources cannot contain spaces down this path.
        for item in annotation_text.split():
            key, __, value = item.partition("=")
            if key == "conf":
                confidence = float(value)
            elif key == "src":
                source = value
            elif key == "scope":
                scope = _parse_scope(value)
    return Triple(subject, predicate, obj, confidence, source, scope)


def triple_to_line(triple: Triple) -> str:
    """Render one triple as a single line."""
    line = " ".join(
        [
            term_to_text(triple.subject),
            term_to_text(triple.predicate),
            term_to_text(triple.object),
            ".",
        ]
    )
    annotation_text = annotations_to_text(triple)
    if annotation_text:
        line += " # " + annotation_text
    return line


def triple_from_line(line: str) -> Optional[Triple]:
    """Parse one line; blank lines and pure comments return None."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    if " . # " in line:
        body, annotation_text = line.rsplit(" . # ", 1)
        sep = True
    else:
        body, annotation_text, sep = line, "", False
    tokens = _split_terms(body)
    if len(tokens) < 3:
        raise ValueError(f"malformed triple line: {line!r}")
    return triple_from_parts(
        tokens[0], tokens[1], tokens[2], annotation_text if sep else ""
    )


def _parse_scope(text: str) -> TimeSpan:
    match = _SCOPE_RE.match(text)
    if match is None:
        raise ValueError(f"malformed scope: {text!r}")
    begin_text, end_text = match.groups()
    begin = int(begin_text) if begin_text else None
    end = int(end_text) if end_text else None
    return TimeSpan(begin, end)


def _split_terms(body: str) -> list[str]:
    """Split a triple body into term tokens, respecting quoted literals."""
    tokens, current, in_quote, escaped = [], [], False, False
    for ch in body:
        if in_quote:
            current.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_quote = False
            continue
        if ch == '"':
            in_quote = True
            current.append(ch)
        elif ch.isspace():
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(ch)
    if current:
        tokens.append("".join(current))
    if tokens and tokens[-1] == ".":
        tokens.pop()
    return tokens


def write_ntriples(store: Iterable[Triple], handle: TextIO) -> int:
    """Write every triple as one line; return the number written."""
    written = 0
    for triple in store:
        handle.write(triple_to_line(triple) + "\n")
        written += 1
    return written


def read_ntriples(handle: TextIO) -> Iterator[Triple]:
    """Yield triples from a line-format stream, skipping blanks/comments."""
    for line in handle:
        triple = triple_from_line(line)
        if triple is not None:
            yield triple


def save(store: TripleStore, path: str) -> int:
    """Save a store to a file; return the number of triples written."""
    with open(path, "w", encoding="utf-8") as handle:
        return write_ntriples(store, handle)


def load(path: str) -> TripleStore:
    """Load a store from a file produced by :func:`save`."""
    store = TripleStore()
    with open(path, "r", encoding="utf-8") as handle:
        store.add_all(read_ntriples(handle))
    return store


def write_tsv(store: Iterable[Triple], handle: TextIO) -> int:
    """Write subject/predicate/object/confidence columns as TSV."""
    written = 0
    for triple in store:
        columns = [
            term_to_text(triple.subject),
            term_to_text(triple.predicate),
            term_to_text(triple.object),
            f"{triple.confidence:.6g}",
        ]
        handle.write("\t".join(columns) + "\n")
        written += 1
    return written
