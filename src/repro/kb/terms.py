"""RDF-style terms: entities, relations, and literals.

Today's knowledge bases represent their data mostly in RDF-style SPO
(subject-predicate-object) triples (Suchanek & Weikum, VLDB 2014, section 2).
This module defines the three kinds of term that can appear in such triples:

* :class:`Entity` — a named individual (``yago:Steve_Jobs``),
* :class:`Relation` — a predicate (``yago:wasBornIn``),
* :class:`Literal` — a typed value (``"1955"^^xsd:integer``, ``"Paris"@fr``).

Terms are immutable and hashable, so they can be used directly as dictionary
keys in the triple-store indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Entity:
    """A named individual, identified by a namespaced identifier.

    The identifier is an opaque string such as ``"world:Steve_Jobs"``.  Two
    entities are the same iff their identifiers are equal; human-readable
    names live in ``rdfs:label`` triples, not in the identifier.
    """

    id: str

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("Entity id must be a non-empty string")

    @property
    def local_name(self) -> str:
        """The identifier without its namespace prefix."""
        __, __, local = self.id.rpartition(":")
        return local or self.id

    def __str__(self) -> str:
        return self.id

    def __repr__(self) -> str:
        return f"Entity({self.id!r})"


@dataclass(frozen=True, slots=True)
class Relation:
    """A binary predicate connecting a subject to an object.

    Relations may declare a *domain* and *range* class (used by the
    consistency reasoner) and whether they are *functional* (at most one
    object per subject, e.g. ``wasBornIn``).  These attributes are carried as
    schema triples in the store; the dataclass itself is just the identifier.
    """

    id: str

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("Relation id must be a non-empty string")

    @property
    def local_name(self) -> str:
        """The identifier without its namespace prefix."""
        __, __, local = self.id.rpartition(":")
        return local or self.id

    def __str__(self) -> str:
        return self.id

    def __repr__(self) -> str:
        return f"Relation({self.id!r})"


@dataclass(frozen=True, slots=True)
class Literal:
    """A typed literal value, optionally carrying a language tag.

    ``value`` is stored as a plain string; ``datatype`` names the lexical
    space (``"string"``, ``"integer"``, ``"decimal"``, ``"date"``, ``"year"``).
    Use :meth:`to_python` to obtain the native Python value.
    """

    value: str
    datatype: str = "string"
    lang: str | None = None

    _KNOWN_DATATYPES = frozenset({"string", "integer", "decimal", "date", "year"})

    def __post_init__(self) -> None:
        if self.datatype not in self._KNOWN_DATATYPES:
            raise ValueError(f"unknown literal datatype: {self.datatype!r}")
        if self.lang is not None and self.datatype != "string":
            raise ValueError("language tags are only valid on string literals")

    def to_python(self) -> Union[str, int, float]:
        """Convert the lexical value to its native Python representation."""
        if self.datatype == "integer" or self.datatype == "year":
            return int(self.value)
        if self.datatype == "decimal":
            return float(self.value)
        return self.value

    def __str__(self) -> str:
        if self.lang:
            return f'"{self.value}"@{self.lang}'
        if self.datatype != "string":
            return f'"{self.value}"^^{self.datatype}'
        return f'"{self.value}"'

    def __repr__(self) -> str:
        return f"Literal({self.value!r}, {self.datatype!r}, lang={self.lang!r})"


#: Anything that may appear in the object position of a triple.
Term = Union[Entity, Relation, Literal]
#: Anything that may appear in the subject position of a triple.
Resource = Union[Entity, Relation]


def string_literal(value: str, lang: str | None = None) -> Literal:
    """Create a string literal, optionally language-tagged."""
    return Literal(value, "string", lang)


def integer_literal(value: int) -> Literal:
    """Create an integer literal."""
    return Literal(str(int(value)), "integer")


def year_literal(value: int) -> Literal:
    """Create a year literal (a calendar year, possibly negative for BCE)."""
    return Literal(str(int(value)), "year")


def decimal_literal(value: float) -> Literal:
    """Create a decimal literal."""
    return Literal(repr(float(value)), "decimal")
