"""The knowledge-base substrate: RDF-style terms, triples, store, queries.

This subpackage is the SPO data model the tutorial's section 2 opens with:
everything the harvesting, reasoning, and analytics layers produce or consume
is a :class:`~repro.kb.triple.Triple` living in a
:class:`~repro.kb.store.TripleStore`.
"""

from . import ns
from .terms import (
    Entity,
    Literal,
    Relation,
    Term,
    Resource,
    string_literal,
    integer_literal,
    year_literal,
    decimal_literal,
)
from .triple import ALWAYS, TimeSpan, Triple
from .engine import InMemoryEngine, ReadableStore, ReadOnlyStoreError
from .store import MutationCounts, TripleStore
from .segments import (
    SegmentSnapshot,
    SegmentStore,
    diff_segment_dirs,
    open_snapshot,
    write_segments,
)
from .query import Pattern, Query, Var, ask, slot_to_text
from .schema import Taxonomy, schema_triples
from .sameas import UnionFind, canonicalize, sameas_closure
from .rdfio import load, save, triple_from_line, triple_to_line
from .graphutil import degree_statistics, relation_path, to_networkx

__all__ = [
    "ns",
    "Entity",
    "Literal",
    "Relation",
    "Term",
    "Resource",
    "string_literal",
    "integer_literal",
    "year_literal",
    "decimal_literal",
    "ALWAYS",
    "TimeSpan",
    "Triple",
    "InMemoryEngine",
    "ReadableStore",
    "ReadOnlyStoreError",
    "MutationCounts",
    "TripleStore",
    "SegmentSnapshot",
    "SegmentStore",
    "diff_segment_dirs",
    "open_snapshot",
    "write_segments",
    "Pattern",
    "Query",
    "Var",
    "ask",
    "slot_to_text",
    "Taxonomy",
    "schema_triples",
    "UnionFind",
    "canonicalize",
    "sameas_closure",
    "load",
    "save",
    "triple_from_line",
    "triple_to_line",
    "degree_statistics",
    "relation_path",
    "to_networkx",
]
