"""Well-known relations and classes used across the toolkit.

These play the role of the RDF/RDFS/OWL vocabulary in a real knowledge base:
``rdf:type``, ``rdfs:subClassOf``, ``rdfs:label``, ``owl:sameAs``, plus the
schema-description relations the consistency reasoner consumes.
"""

from __future__ import annotations

from .terms import Entity, Relation

#: ``rdf:type`` — entity is an instance of a class.
TYPE = Relation("rdf:type")
#: ``rdfs:subClassOf`` — class subsumption.
SUBCLASS_OF = Relation("rdfs:subClassOf")
#: ``rdfs:label`` — human-readable (possibly language-tagged) name.
LABEL = Relation("rdfs:label")
#: ``owl:sameAs`` — identity link between entities in different sources.
SAME_AS = Relation("owl:sameAs")
#: ``skos:prefLabel`` equivalent — the single preferred name.
PREF_LABEL = Relation("rdfs:prefLabel")

#: Schema triples: ``<relation> rdfs:domain <class>``.
DOMAIN = Relation("rdfs:domain")
#: Schema triples: ``<relation> rdfs:range <class>``.
RANGE = Relation("rdfs:range")
#: Schema triples: ``<relation> kb:functional "true"`` marks functional relations.
FUNCTIONAL = Relation("kb:functional")
#: Schema triples: ``<r1> kb:disjointWith <r2>`` marks mutually exclusive relations.
DISJOINT_WITH = Relation("kb:disjointWith")
#: Schema triples: ``<c1> kb:disjointClassWith <c2>`` marks disjoint classes.
DISJOINT_CLASS_WITH = Relation("kb:disjointClassWith")

#: The universal top class; every class is a subclass of it.
THING = Entity("kb:Thing")


def entity(local: str, prefix: str = "world") -> Entity:
    """Create an entity in the given namespace (``world`` by default)."""
    return Entity(f"{prefix}:{local}")


def relation(local: str, prefix: str = "world") -> Relation:
    """Create a relation in the given namespace (``world`` by default)."""
    return Relation(f"{prefix}:{local}")
