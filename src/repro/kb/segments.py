"""The on-disk storage engine: immutable sorted-segment files.

A *segment* is one immutable unit of KB storage: the same triples written
three times, each file sorted in a different term permutation — ``spo``,
``pos``, ``osp`` — so every indexed pattern shape becomes a binary search
for a byte-prefix range in exactly one file.  A sidecar carries bloom
filters (full SPO key, and subject text) so point lookups and subject
scans can skip segments that cannot contain the key.  ``MANIFEST.json``
names the live segments, their checksums, and the logical store identity
(triple count and content-chain epoch).

The format is **byte-pinned**: every integer is little-endian and
fixed-width, records are canonical rdfio term texts, and record order is
the lexicographic order of the record bytes themselves — no hash order,
no timestamps, no randomness anywhere.  Two builds of the same world
therefore produce byte-identical segment directories at any worker count
or backend, which is what lets ``repro check-determinism`` diff KBs as
files and what makes the golden tiny-world fixture in ``tests/`` stable.

Layout of one order file (``seg-NNNNNN.spo`` / ``.pos`` / ``.osp``)::

    magic   8s   b"RPROSEG1"
    order   4s   b"spo\\0" / b"pos\\0" / b"osp\\0"
    version u32  1
    count   u64  number of records
    heap    u64  record-heap length in bytes
    offsets u64 × (count + 1), relative to the heap start
    heap    the records, back to back, sorted by their own bytes

A record is the four canonical texts joined by NUL —
``term_a\\0term_b\\0term_c\\0annotations`` — with the three terms permuted
per order (``pos`` stores predicate, object, subject).  NUL sorts below
every other byte, so comparing raw record bytes is exactly tuple
comparison on the fields, and a prefix probe for ``k`` bound terms is the
half-open range ``[lower_bound(prefix), lower_bound(prefix + b"\\xff"))``
(0xFF is above every byte UTF-8 can produce).  Term texts and annotations
must not contain NUL; the writer rejects them.

Multiple segments form an LSM-style stack: the newest generation wins per
SPO key, which is what the incremental build path leans on.  A delta
generation can also *retract*: a **tombstone record** is a record whose
annotations field is the sentinel ``!tombstone`` (a text the annotation
serializer can never produce), and it shadows every older record with its
SPO key without contributing a triple itself.  Tombstones participate in
bloom filters and binary searches like any record — a point lookup must
not skip the delta that deletes its key — but are dropped from logical
reads, counts, and the epoch.  ``compact()`` folds the stack back to the
**canonical single-segment form**: generation 0 (``seg-000000``), with
every tombstone — and everything it shadowed — erased for good, so a
compacted directory is byte-identical to :func:`write_segments` of the
same logical content.  Replaced files are rewritten atomically (tmp +
``os.replace``) and old ones unlinked; because POSIX keeps
unlinked-but-open mmaps readable, snapshots opened before a compaction
keep working lock-free.

:class:`SegmentSnapshot` is the read side: a cheap, immutable,
lock-free view satisfying :class:`~repro.kb.engine.ReadableStore`, with
``match`` orders chosen so that its responses are byte-identical to an
in-memory :class:`~repro.kb.store.TripleStore` loaded from the same
snapshot (see ``_match_parts``).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import threading
from typing import Iterable, Iterator, Optional

from .engine import ReadOnlyStoreError
from .rdfio import annotations_to_text, term_to_text, triple_from_parts
from .store import EMPTY_EPOCH, epoch_hex, triple_content_hash
from .terms import Resource, Term
from .triple import Triple
from ..obs import core as _obs

SEGMENT_MAGIC = b"RPROSEG1"
BLOOM_MAGIC = b"RPROBLM1"
FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"

#: The three sort orders and the term permutation each file stores.
ORDERS = ("spo", "pos", "osp")
_PERM = {"spo": (0, 1, 2), "pos": (1, 2, 0), "osp": (2, 0, 1)}

_HEADER = struct.Struct("<8s4sIQQ")  # magic, order, version, count, heap bytes
_U64 = struct.Struct("<Q")
_BLOOM_HEADER = struct.Struct("<8sII")  # magic, version, bloom count
_BLOOM_ENTRY = struct.Struct("<4sQII")  # name, bits, hashes, byte length

#: Bloom sizing: ~1% false-positive rate at 10 bits/key with 7 hashes.
BLOOM_BITS_PER_KEY = 10
BLOOM_HASHES = 7


# --------------------------------------------------------------- records

#: The annotations-field sentinel marking a retraction record.  Real
#: annotations are either empty or start with ``conf=``/``src=``/``scope=``
#: (see :func:`repro.kb.rdfio.annotations_to_text`), so this text is
#: unreachable from any triple and the two record kinds can never collide.
TOMBSTONE = "!tombstone"


def tombstone_fields(
    subject_text: str, predicate_text: str, object_text: str
) -> tuple[str, str, str, str]:
    """The record fields of a tombstone for one canonical SPO key."""
    return (subject_text, predicate_text, object_text, TOMBSTONE)


def is_tombstone(fields: tuple[str, str, str, str]) -> bool:
    """True when record fields carry the retraction sentinel."""
    return fields[3] == TOMBSTONE


def spo_texts(triple: Triple) -> tuple[str, str, str]:
    """A triple's canonical (subject, predicate, object) texts — the key
    form :meth:`SegmentStore.flush` accepts as a tombstone."""
    return (
        term_to_text(triple.subject),
        term_to_text(triple.predicate),
        term_to_text(triple.object),
    )


def record_fields(triple: Triple) -> tuple[str, str, str, str]:
    """The four canonical texts a record stores, in SPO order."""
    return (
        term_to_text(triple.subject),
        term_to_text(triple.predicate),
        term_to_text(triple.object),
        annotations_to_text(triple),
    )


def _record_bytes(fields: tuple[str, str, str, str], order: str) -> bytes:
    a, b, c = (fields[i] for i in _PERM[order])
    return "\x00".join((a, b, c, fields[3])).encode("utf-8")


def _parts_from_record(record: bytes, order: str) -> tuple[str, str, str, str]:
    """Invert :func:`_record_bytes`: record bytes back to SPO-order texts."""
    a, b, c, annotation = record.decode("utf-8").split("\x00", 3)
    permuted = (a, b, c)
    inverse = _PERM[order]
    spo = ["", "", ""]
    for position, field in zip(inverse, permuted):
        spo[position] = field
    return (spo[0], spo[1], spo[2], annotation)


def _prefix_bytes(texts: Iterable[str]) -> bytes:
    """The byte prefix every record whose leading fields equal ``texts``
    starts with (each field is NUL-terminated in the record)."""
    return "".join(f"{t}\x00" for t in texts).encode("utf-8")


def _triple_from_parts(parts: tuple[str, str, str, str]) -> Triple:
    return triple_from_parts(parts[0], parts[1], parts[2], parts[3])


def spo_key_bytes(fields: tuple[str, str, str, str]) -> bytes:
    """The SPO identity key a bloom filter and the dedup logic speak."""
    return _prefix_bytes(fields[:3])


# ---------------------------------------------------------------- blooms


class BloomFilter:
    """A plain bitset bloom filter with double hashing off one blake2b.

    The two 64-bit hash lanes come from a single 16-byte blake2b digest
    (first 8 bytes and last 8 bytes, little-endian; the second lane is
    forced odd), probing ``(h1 + i * h2) mod num_bits`` — deterministic
    across processes, no per-run salts.
    """

    __slots__ = ("num_bits", "num_hashes", "bits")

    def __init__(self, num_bits: int, num_hashes: int, bits: bytearray) -> None:
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.bits = bits

    @classmethod
    def build(cls, keys: Iterable[bytes], bits_per_key: int = BLOOM_BITS_PER_KEY,
              num_hashes: int = BLOOM_HASHES) -> "BloomFilter":
        keys = list(keys)
        num_bits = max(64, len(keys) * bits_per_key)
        num_bits += (-num_bits) % 8
        bloom = cls(num_bits, num_hashes, bytearray(num_bits // 8))
        for key in keys:
            bloom.add(key)
        return bloom

    def _probes(self, key: bytes) -> Iterator[int]:
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: bytes) -> None:
        for bit in self._probes(key):
            self.bits[bit >> 3] |= 1 << (bit & 7)

    def might_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means possibly present."""
        return all(self.bits[bit >> 3] & (1 << (bit & 7)) for bit in self._probes(key))


def _pack_blooms(blooms: dict[str, BloomFilter]) -> bytes:
    chunks = [_BLOOM_HEADER.pack(BLOOM_MAGIC, FORMAT_VERSION, len(blooms))]
    for name in sorted(blooms):
        bloom = blooms[name]
        padded = name.encode("ascii").ljust(4, b"\x00")
        chunks.append(
            _BLOOM_ENTRY.pack(padded, bloom.num_bits, bloom.num_hashes, len(bloom.bits))
        )
        chunks.append(bytes(bloom.bits))
    return b"".join(chunks)


def _unpack_blooms(blob: bytes) -> dict[str, BloomFilter]:
    magic, version, count = _BLOOM_HEADER.unpack_from(blob, 0)
    if magic != BLOOM_MAGIC or version != FORMAT_VERSION:
        raise ValueError(f"bad bloom sidecar header: {magic!r} v{version}")
    blooms: dict[str, BloomFilter] = {}
    cursor = _BLOOM_HEADER.size
    for _ in range(count):
        padded, num_bits, num_hashes, byte_len = _BLOOM_ENTRY.unpack_from(blob, cursor)
        cursor += _BLOOM_ENTRY.size
        bits = bytearray(blob[cursor:cursor + byte_len])
        cursor += byte_len
        name = padded.rstrip(b"\x00").decode("ascii")
        blooms[name] = BloomFilter(num_bits, num_hashes, bits)
    return blooms


# ----------------------------------------------------------- order files


def _pack_order_file(order: str, records: list[bytes]) -> bytes:
    """Serialize sorted records into one order file's bytes."""
    heap = b"".join(records)
    chunks = [_HEADER.pack(SEGMENT_MAGIC, f"{order}\x00".encode("ascii"),
                           FORMAT_VERSION, len(records), len(heap))]
    offset = 0
    for record in records:
        chunks.append(_U64.pack(offset))
        offset += len(record)
    chunks.append(_U64.pack(offset))
    chunks.append(heap)
    return b"".join(chunks)


class _OrderFile:
    """A read-only mmap view over one sorted order file."""

    __slots__ = ("path", "order", "count", "_file", "_mm", "_offsets_at", "_heap_at")

    def __init__(self, path: str, order: str) -> None:
        self.path = path
        self.order = order
        self._file = open(path, "rb")
        self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        magic, order_tag, version, count, heap_bytes = _HEADER.unpack_from(self._mm, 0)
        if magic != SEGMENT_MAGIC or version != FORMAT_VERSION:
            raise ValueError(f"bad segment header in {path}: {magic!r} v{version}")
        if order_tag != f"{order}\x00".encode("ascii"):
            raise ValueError(f"{path}: order tag {order_tag!r} != {order!r}")
        self.count = count
        self._offsets_at = _HEADER.size
        self._heap_at = self._offsets_at + (count + 1) * 8
        expected = self._heap_at + heap_bytes
        if len(self._mm) != expected:
            raise ValueError(f"{path}: truncated ({len(self._mm)} != {expected} bytes)")

    def _offset(self, i: int) -> int:
        return _U64.unpack_from(self._mm, self._offsets_at + i * 8)[0]

    def record(self, i: int) -> bytes:
        lo = self._heap_at + self._offset(i)
        hi = self._heap_at + self._offset(i + 1)
        return self._mm[lo:hi]

    def lower_bound(self, needle: bytes) -> int:
        """The first index whose record sorts >= ``needle``."""
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.record(mid) < needle:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def prefix_range(self, prefix: bytes) -> tuple[int, int]:
        """The half-open [lo, hi) index range of records starting with
        ``prefix`` (empty prefix selects everything)."""
        if not prefix:
            return 0, self.count
        return self.lower_bound(prefix), self.lower_bound(prefix + b"\xff")

    def records(self, lo: int, hi: int) -> Iterator[bytes]:
        for i in range(lo, hi):
            yield self.record(i)

    def close(self) -> None:
        self._mm.close()
        self._file.close()


# --------------------------------------------------------------- writing


def _check_no_nul(fields: tuple[str, str, str, str]) -> None:
    for field in fields:
        if "\x00" in field:
            raise ValueError(f"NUL byte in segment record field: {field!r}")


def _dedup_newest_wins(
    batches: Iterable[Iterable[tuple[str, str, str, str]]],
) -> dict[bytes, tuple[str, str, str, str]]:
    """Merge record-field batches, **newest batch first**: the first
    occurrence of an SPO key wins (LSM shadowing)."""
    merged: dict[bytes, tuple[str, str, str, str]] = {}
    for batch in batches:
        for fields in batch:
            key = spo_key_bytes(fields)
            if key not in merged:
                merged[key] = fields
    return merged


def _drop_tombstones(
    parts_by_key: dict[bytes, tuple[str, str, str, str]],
) -> dict[bytes, tuple[str, str, str, str]]:
    """Logical view of a newest-wins merge: keys whose winning record is a
    tombstone are deleted (the tombstone shadowed every older witness)."""
    return {
        key: fields
        for key, fields in parts_by_key.items()
        if not is_tombstone(fields)
    }


def _logical_epoch(parts_by_key: dict[bytes, tuple[str, str, str, str]]) -> str:
    """The epoch of the logical content: the same multiset content hash an
    in-memory :class:`~repro.kb.store.TripleStore` holding these triples
    reports (see ``triple_content_hash``) — order-independent, so a store
    loaded from the ``.nt`` file, a store loaded from this snapshot, and
    the snapshot itself all agree on the epoch."""
    accumulator = EMPTY_EPOCH
    for key in sorted(parts_by_key):
        accumulator += triple_content_hash(_triple_from_parts(parts_by_key[key]))
    return epoch_hex(accumulator)


def _replace_file(path: str, blob: bytes) -> None:
    """Atomically (re)write one segment file.

    Never truncates in place: compaction reuses the canonical segment name
    (``seg-000000``), and an ``open(path, "wb")`` would zero the very inode
    a pinned snapshot still has mmap-ed.  Writing a sibling ``.tmp`` and
    ``os.replace``-ing it swaps the directory entry instead — the old inode
    lives on for every open mmap.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
    os.replace(tmp, path)


def _write_segment_files(
    directory: str, name: str, parts: list[tuple[str, str, str, str]]
) -> dict:
    """Write one segment's three order files + bloom sidecar; return its
    manifest entry.  ``parts`` need not be pre-sorted or pre-validated and
    may include tombstone records: they are stored (and bloomed — a lookup
    must not skip the segment that deletes its key) but counted separately
    from live triples."""
    for fields in parts:
        _check_no_nul(fields)
    tombstones = sum(1 for fields in parts if is_tombstone(fields))
    entry_files: dict[str, dict] = {}
    for order in ORDERS:
        records = sorted(_record_bytes(fields, order) for fields in parts)
        blob = _pack_order_file(order, records)
        _replace_file(os.path.join(directory, f"{name}.{order}"), blob)
        entry_files[order] = {
            "bytes": len(blob),
            "sha256": hashlib.sha256(blob).hexdigest(),
            "min_key": records[0].hex() if records else "",
            "max_key": records[-1].hex() if records else "",
        }
    blooms = {
        "spo": BloomFilter.build(spo_key_bytes(fields) for fields in parts),
        "s": BloomFilter.build(
            sorted({fields[0].encode("utf-8") for fields in parts})
        ),
    }
    bloom_blob = _pack_blooms(blooms)
    _replace_file(os.path.join(directory, f"{name}.blooms"), bloom_blob)
    if _obs.ENABLED:
        _obs.count("kb.segments.write")
        _obs.observe("kb.segments.write.triples", len(parts))
    entry = {
        "name": name,
        "generation": int(name.split("-")[1]),
        "triples": len(parts) - tombstones,
        "files": entry_files,
        "blooms": {
            "bytes": len(bloom_blob),
            "sha256": hashlib.sha256(bloom_blob).hexdigest(),
        },
    }
    if tombstones:
        # Only present when nonzero, so tombstone-free manifests stay
        # byte-identical to the pre-tombstone format (golden fixtures).
        entry["tombstones"] = tombstones
    return entry


def _write_manifest(directory: str, manifest: dict) -> None:
    """Atomically replace the manifest (canonical JSON, sorted keys)."""
    text = json.dumps(manifest, sort_keys=True, separators=(",", ":")) + "\n"
    tmp = os.path.join(directory, MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(tmp, os.path.join(directory, MANIFEST_NAME))


def _read_manifest(directory: str) -> dict:
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported segment format {manifest.get('format_version')!r} in {path}"
        )
    return manifest


def write_segments(store: Iterable[Triple], directory: str) -> dict:
    """Emit a fresh single-segment directory for a store's content.

    The result is a pure function of the logical triples: any prior
    segments in the directory are replaced, the single segment is always
    ``seg-000000``, and two builds of the same world are byte-identical
    file for file.  Returns the manifest dict.
    """
    os.makedirs(directory, exist_ok=True)
    for stale in sorted(os.listdir(directory)):
        if stale.startswith("seg-") or stale.startswith(MANIFEST_NAME):
            os.unlink(os.path.join(directory, stale))
    parts_by_key = _dedup_newest_wins([[record_fields(t) for t in store]])
    parts = [parts_by_key[key] for key in sorted(parts_by_key)]
    entry = _write_segment_files(directory, "seg-000000", parts)
    manifest = {
        "format_version": FORMAT_VERSION,
        "epoch": _logical_epoch(parts_by_key),
        "triples": len(parts),
        "segments": [entry],
    }
    _write_manifest(directory, manifest)
    return manifest


# --------------------------------------------------------------- reading


class _OpenSegment:
    """One live segment: lazily opened order files plus its blooms."""

    __slots__ = ("directory", "entry", "_orders", "_blooms")

    def __init__(self, directory: str, entry: dict) -> None:
        self.directory = directory
        self.entry = entry
        self._orders: dict[str, _OrderFile] = {}
        self._blooms: Optional[dict[str, BloomFilter]] = None

    @property
    def name(self) -> str:
        return self.entry["name"]

    @property
    def generation(self) -> int:
        return self.entry["generation"]

    def order_file(self, order: str) -> _OrderFile:
        handle = self._orders.get(order)
        if handle is None:
            path = os.path.join(self.directory, f"{self.name}.{order}")
            handle = self._orders[order] = _OrderFile(path, order)
        return handle

    def bloom(self, name: str) -> BloomFilter:
        if self._blooms is None:
            path = os.path.join(self.directory, f"{self.name}.blooms")
            with open(path, "rb") as handle:
                self._blooms = _unpack_blooms(handle.read())
        return self._blooms[name]

    def close(self) -> None:
        for handle in self._orders.values():
            handle.close()
        self._orders.clear()


class SegmentSnapshot:
    """An immutable, lock-free view over one manifest's segments.

    Opening a snapshot reads the manifest and mmaps segment files —
    no locks, no copies — so any number of threads or processes can serve
    the same build concurrently.  It satisfies the
    :class:`~repro.kb.engine.ReadableStore` contract: ``version`` is the
    logical triple count (what a fresh in-memory load would also report)
    and ``epoch`` is the manifest's content-chain epoch, so
    ``TripleStore(snapshot)`` agrees with the snapshot on both — the
    property that makes snapshot serving byte-identical to in-memory
    serving, cache keys included.

    Mutation methods raise :class:`~repro.kb.engine.ReadOnlyStoreError`.
    """

    mutable = False

    #: shape -> (order file, which SPO positions form the prefix)
    _SHAPES = {
        "spo": ("spo", (0, 1, 2)),
        "sp": ("spo", (0, 1)),
        "s": ("spo", (0,)),
        "po": ("pos", (1, 2)),
        "p": ("pos", (1,)),
        "o": ("osp", (2,)),
        "s+o": ("osp", (2, 0)),
        "scan": ("spo", ()),
    }

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.manifest = _read_manifest(directory)
        # Newest generation first: the dedup in _match_parts keeps the
        # first occurrence of each SPO key it sees.
        self._segments = [
            _OpenSegment(directory, entry)
            for entry in sorted(
                self.manifest["segments"],
                key=lambda e: e["generation"],
                reverse=True,
            )
        ]
        # Pin every file NOW: a later compaction unlinks replaced segment
        # files, and only already-open mmaps survive an unlink (POSIX).
        for segment in self._segments:
            for order in ORDERS:
                segment.order_file(order)
            segment.bloom("spo")
        self._has_tombstones = any(
            entry.get("tombstones") for entry in self.manifest["segments"]
        )
        self.stats = {"probes": 0, "bloom_skips": 0}

    # ------------------------------------------------------------ identity

    @property
    def version(self) -> int:
        """The logical triple count — equal to the ``version`` a fresh
        :class:`TripleStore` loaded from this snapshot reports."""
        return self.manifest["triples"]

    @property
    def epoch(self) -> str:
        """The manifest's content-chain epoch (hex)."""
        return self.manifest["epoch"]

    @property
    def segments(self) -> list[_OpenSegment]:
        return self._segments

    # --------------------------------------------------------------- reads

    @staticmethod
    def _shape(s, p, o) -> str:
        if s is not None and p is not None and o is not None:
            return "spo"
        if s is not None and p is not None:
            return "sp"
        if p is not None and o is not None:
            return "po"
        if s is not None and o is not None:
            return "s+o"
        if s is not None:
            return "s"
        if p is not None:
            return "p"
        if o is not None:
            return "o"
        return "scan"

    def _match_parts(
        self,
        subject: Optional[Resource],
        predicate: Optional[Resource],
        obj: Optional[Term],
    ) -> list[tuple[str, str, str, str]]:
        """Matching records as SPO-order text parts, in the order an
        in-memory store loaded from this snapshot would yield them.

        For every shape except ``p`` the serving order file's sort
        already equals the in-memory bucket's insertion order (buckets
        fill in canonical SPO order when a store loads a snapshot); a
        predicate-only probe reads the POS file — sorted (o, s) — but the
        in-memory ``_by_p`` bucket iterates (s, o), so that one shape
        re-sorts by SPO key.  Multi-segment stacks always re-sort after
        newest-wins dedup, which single-segment snapshots can skip.
        """
        shape = self._shape(subject, predicate, obj)
        order, positions = self._SHAPES[shape]
        texts = {
            0: None if subject is None else term_to_text(subject),
            1: None if predicate is None else term_to_text(predicate),
            2: None if obj is None else term_to_text(obj),
        }
        prefix = _prefix_bytes(texts[i] for i in positions)
        self.stats["probes"] += 1
        if _obs.ENABLED:
            _obs.count("kb.segments.match")
            _obs.count(f"kb.segments.match.shape.{shape}")
        batches = []
        for segment in self._segments:
            if shape == "spo" and not segment.bloom("spo").might_contain(prefix):
                self.stats["bloom_skips"] += 1
                continue
            if shape in ("s", "sp") and not segment.bloom("s").might_contain(
                texts[0].encode("utf-8")
            ):
                self.stats["bloom_skips"] += 1
                continue
            handle = segment.order_file(order)
            lo, hi = handle.prefix_range(prefix)
            batches.append(
                [_parts_from_record(r, order) for r in handle.records(lo, hi)]
            )
        if len(batches) == 1 and shape != "p":
            # The single-segment fast path still sees tombstones: a fresh
            # delta segment carries its own retractions.
            if self._has_tombstones:
                return [p for p in batches[0] if not is_tombstone(p)]
            return batches[0]
        merged = _dedup_newest_wins(batches)
        if self._has_tombstones:
            merged = _drop_tombstones(merged)
        if shape == "p":
            return [merged[key] for key in sorted(merged)]
        reorder = _PERM[order]
        return sorted(
            merged.values(), key=lambda parts: tuple(parts[i] for i in reorder)
        )

    def match(
        self,
        subject: Optional[Resource] = None,
        predicate: Optional[Resource] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching a pattern; None is a wildcard."""
        for parts in self._match_parts(subject, predicate, obj):
            yield _triple_from_parts(parts)

    def count(
        self,
        subject: Optional[Resource] = None,
        predicate: Optional[Resource] = None,
        obj: Optional[Term] = None,
    ) -> int:
        return len(self._match_parts(subject, predicate, obj))

    def get(self, subject: Resource, predicate: Resource, obj: Term) -> Optional[Triple]:
        for triple in self.match(subject, predicate, obj):
            return triple
        return None

    def contains_fact(self, subject: Resource, predicate: Resource, obj: Term) -> bool:
        return self.get(subject, predicate, obj) is not None

    def __len__(self) -> int:
        return self.manifest["triples"]

    def __iter__(self) -> Iterator[Triple]:
        return self.match()

    def __contains__(self, triple: Triple) -> bool:
        return self.contains_fact(triple.subject, triple.predicate, triple.object)

    def predicates(self) -> set:
        """The set of predicates occurring in the snapshot."""
        seen: dict[str, None] = {}
        for parts in self._match_parts(None, None, None):
            seen.setdefault(parts[1], None)
        return {
            triple_from_parts("<x>", text, "<x>").predicate for text in seen
        }

    # ----------------------------------------------------------- mutations

    def _read_only(self, *_args, **_kwargs):
        raise ReadOnlyStoreError(
            "segment snapshots are immutable; load into a TripleStore to mutate"
        )

    add = add_fact = add_all = remove = merge = _read_only

    # ----------------------------------------------------------- lifecycle

    def close(self) -> None:
        for segment in self._segments:
            segment.close()

    def __enter__(self) -> "SegmentSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SegmentSnapshot(dir={self.directory!r}, "
            f"segments={len(self._segments)}, triples={len(self)})"
        )


def open_snapshot(directory: str) -> SegmentSnapshot:
    """Open a lock-free read snapshot of a segment directory."""
    return SegmentSnapshot(directory)


# ------------------------------------------------------------ segment store


class SegmentStore:
    """The write side of a segment directory: flush deltas, compact.

    ``flush`` appends one new segment per call (an LSM level-0 write);
    when the stack exceeds ``compact_threshold`` segments a background
    thread folds them into one.  All writers serialize on one lock;
    readers never take it — they open :class:`SegmentSnapshot` views,
    which stay valid across compaction because POSIX keeps unlinked
    files readable while mapped.
    """

    def __init__(self, directory: str, compact_threshold: int = 4) -> None:
        self.directory = directory
        self.compact_threshold = compact_threshold
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._compactor: Optional[threading.Thread] = None
        self._recompact = False
        self._closed = False

    # ------------------------------------------------------------- helpers

    def _manifest(self) -> dict:
        if os.path.exists(os.path.join(self.directory, MANIFEST_NAME)):
            return _read_manifest(self.directory)
        return {"format_version": FORMAT_VERSION, "epoch": epoch_hex(EMPTY_EPOCH),
                "triples": 0, "segments": []}

    def _segment_parts(self, entry: dict) -> list[tuple[str, str, str, str]]:
        handle = _OrderFile(
            os.path.join(self.directory, f"{entry['name']}.spo"), "spo"
        )
        try:
            return [
                _parts_from_record(r, "spo") for r in handle.records(0, handle.count)
            ]
        finally:
            handle.close()

    def _logical_parts(self, manifest: dict) -> dict[bytes, tuple[str, str, str, str]]:
        entries = sorted(
            manifest["segments"], key=lambda e: e["generation"], reverse=True
        )
        merged = _dedup_newest_wins(self._segment_parts(e) for e in entries)
        return _drop_tombstones(merged)

    def logical_parts(self) -> dict[bytes, tuple[str, str, str, str]]:
        """The store's merged logical content: newest-wins across the
        generation stack, tombstoned keys dropped, keyed by SPO key bytes.
        This is what an incremental build diffs a freshly rebuilt KB
        against to derive the next delta's adds and tombstones."""
        with self._lock:
            return self._logical_parts(self._manifest())

    # -------------------------------------------------------------- writes

    def flush(
        self,
        triples: Iterable[Triple],
        tombstones: Iterable[tuple[str, str, str]] = (),
    ) -> Optional[str]:
        """Write one new segment holding ``triples`` plus retraction
        ``tombstones``; returns its name (None for an empty batch).

        A tombstone is the canonical (subject, predicate, object) text
        triple of the key to retract (:func:`spo_texts`); it shadows every
        older generation's record for that key and is erased for good at
        :meth:`compact`.  The manifest's logical count and epoch are
        recomputed over the merged, newest-wins, tombstone-filtered
        content.
        """
        parts = [record_fields(t) for t in triples]
        dead = [tombstone_fields(*key) for key in tombstones]
        if not parts and not dead:
            return None
        live_keys = {spo_key_bytes(fields) for fields in parts}
        for fields in dead:
            if spo_key_bytes(fields) in live_keys:
                raise ValueError(
                    f"key is both added and tombstoned in one flush: "
                    f"{fields[:3]!r}"
                )
        with self._lock:
            if self._closed:
                raise ValueError("SegmentStore is closed")
            manifest = self._manifest()
            generation = max(
                (e["generation"] for e in manifest["segments"]), default=-1
            ) + 1
            name = f"seg-{generation:06d}"
            deduped = _dedup_newest_wins([parts + dead])
            entry = _write_segment_files(
                self.directory, name, [deduped[k] for k in sorted(deduped)]
            )
            manifest["segments"].append(entry)
            logical = self._logical_parts(manifest)
            manifest["epoch"] = _logical_epoch(logical)
            manifest["triples"] = len(logical)
            _write_manifest(self.directory, manifest)
            live = len(manifest["segments"])
        if live > self.compact_threshold:
            self.compact_async()
        return name

    #: The canonical segment name compaction folds the stack into.
    _CANONICAL = "seg-000000"

    def compact(self) -> Optional[str]:
        """Fold every live segment into the canonical single-segment form:
        generation 0, tombstones (and everything they shadowed) erased.

        Logical content — and therefore the epoch — is unchanged, and the
        resulting directory is byte-identical to :func:`write_segments` of
        the same content, which is what lets the determinism harness diff
        an incrementally grown KB against a full rebuild file for file.
        Returns the canonical segment name (None when the directory is
        already canonical or empty).  Replaced files are swapped atomically
        and stale ones unlinked, which existing snapshots survive (their
        mmaps stay valid).  A compaction already scheduled when
        :meth:`close` runs still completes — close joins it — but close
        refuses to *schedule* new ones (see :meth:`compact_async`)."""
        with self._lock:
            manifest = self._manifest()
            old_entries = manifest["segments"]
            if not old_entries:
                return None
            if (
                len(old_entries) == 1
                and old_entries[0]["name"] == self._CANONICAL
                and not old_entries[0].get("tombstones")
            ):
                return None
            if _obs.ENABLED:
                _obs.count("kb.segments.compact")
            logical = self._logical_parts(manifest)
            entry = _write_segment_files(
                self.directory,
                self._CANONICAL,
                [logical[k] for k in sorted(logical)],
            )
            manifest = {
                "format_version": FORMAT_VERSION,
                "epoch": _logical_epoch(logical),
                "triples": len(logical),
                "segments": [entry],
            }
            _write_manifest(self.directory, manifest)
            for old in old_entries:
                if old["name"] == self._CANONICAL:
                    continue    # its files were just atomically replaced
                for suffix in ORDERS + ("blooms",):
                    path = os.path.join(self.directory, f"{old['name']}.{suffix}")
                    if os.path.exists(path):
                        os.unlink(path)
            return self._CANONICAL

    def _compact_worker(self) -> None:
        """Compactor thread body: compact, then retire *under the lock*.

        A flush that crossed the threshold while we were compacting set
        ``_recompact`` instead of spawning a second thread; the flag is
        consumed here before retiring, so its request cannot be lost in
        the window between our last fold and our exit.  ``close()`` joins
        this drain in full: only *new* scheduling is refused after close,
        a compaction a pre-close flush already asked for still runs."""
        while True:
            self.compact()
            with self._lock:
                if not self._recompact:
                    self._compactor = None
                    return
                self._recompact = False

    def compact_async(self) -> Optional[threading.Thread]:
        """Kick off (or join into) a background compaction.

        The check-then-spawn runs under the store lock, so two racing
        ``flush()`` calls that both cross the threshold agree on one
        compactor thread instead of spawning two; if the live compactor
        is already past their flush it re-runs once more before retiring.
        After :meth:`close` this is a no-op (returns None): close is
        final, and a flush racing with it must not leave a daemon thread
        writing into a directory the caller believes quiesced."""
        with self._lock:
            if self._closed:
                return None
            if self._compactor is not None and self._compactor.is_alive():
                self._recompact = True
                return self._compactor
            thread = threading.Thread(
                target=self._compact_worker, name="segment-compactor",
                daemon=True,
            )
            self._compactor = thread
            thread.start()
        return thread

    def snapshot(self) -> SegmentSnapshot:
        """A lock-free read view of the current manifest."""
        return SegmentSnapshot(self.directory)

    def close(self) -> None:
        """Make the store final: no further flushes or compactions can be
        scheduled, and any in-flight background compaction is joined."""
        with self._lock:
            self._closed = True
            compactor, self._compactor = self._compactor, None
        # Join outside the lock: the compactor itself takes the store lock.
        if compactor is not None:
            compactor.join()

    def __repr__(self) -> str:
        return f"SegmentStore(dir={self.directory!r})"


# ------------------------------------------------------------------- diffs


def diff_segment_dirs(left: str, right: str) -> list[str]:
    """File-level differences between two segment directories.

    Returns human-readable difference lines (empty = byte-identical KBs):
    manifest divergence first, then per-file size/checksum mismatches and
    files present on only one side.  This is what ``repro
    check-determinism --segments`` prints when two builds disagree.
    """
    differences: list[str] = []

    def listing(directory: str) -> dict[str, str]:
        names = {}
        for name in sorted(os.listdir(directory)):
            if name == MANIFEST_NAME or (
                name.startswith("seg-") and not name.endswith(".tmp")
            ):
                with open(os.path.join(directory, name), "rb") as handle:
                    names[name] = hashlib.sha256(handle.read()).hexdigest()
        return names

    left_files, right_files = listing(left), listing(right)
    for name in sorted(set(left_files) | set(right_files)):
        if name not in left_files:
            differences.append(f"only in {right}: {name}")
        elif name not in right_files:
            differences.append(f"only in {left}: {name}")
        elif left_files[name] != right_files[name]:
            differences.append(
                f"{name}: sha256 {left_files[name][:16]}… != {right_files[name][:16]}…"
            )
    return differences
