"""owl:sameAs closure via union-find.

Knowledge bases interlinked at the entity level form the backbone of the Web
of Linked Data (tutorial section 1); entity linkage (section 4) produces
``owl:sameAs`` triples between them.  This module computes the equivalence
closure of those links and rewrites a store onto canonical representatives.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace
from typing import Hashable, Optional

from . import ns
from .terms import Entity
from .store import TripleStore


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}

    def find(self, item: Hashable) -> Hashable:
        """The representative of ``item``'s set (item itself if unseen)."""
        if item not in self._parent:
            return item
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets of ``a`` and ``b``; return the new representative."""
        root_a, root_b = self.find(a), self.find(b)
        for item in (root_a, root_b):
            if item not in self._parent:
                self._parent[item] = item
                self._size[item] = 1
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def same(self, a: Hashable, b: Hashable) -> bool:
        """True if the two items are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> list[set[Hashable]]:
        """All sets with at least two members."""
        members: dict[Hashable, set[Hashable]] = defaultdict(set)
        for item in self._parent:
            members[self.find(item)].add(item)
        return [group for group in members.values() if len(group) > 1]


def sameas_closure(store: TripleStore) -> UnionFind:
    """Union-find over all ``owl:sameAs`` triples in the store."""
    uf = UnionFind()
    for triple in store.match(None, ns.SAME_AS, None):
        if isinstance(triple.subject, Entity) and isinstance(triple.object, Entity):
            uf.union(triple.subject, triple.object)
    return uf


def canonicalize(
    store: TripleStore, uf: Optional[UnionFind] = None, keep_sameas: bool = False
) -> TripleStore:
    """Rewrite every entity to its sameAs representative.

    The representative of each group is the member with the lexicographically
    smallest identifier, so canonicalization is deterministic regardless of
    link insertion order.
    """
    if uf is None:
        uf = sameas_closure(store)
    canonical: dict[Entity, Entity] = {}
    for group in uf.groups():
        representative = min(group, key=lambda e: e.id)
        for member in group:
            canonical[member] = representative

    def rewrite(term):
        if isinstance(term, Entity):
            return canonical.get(term, term)
        return term

    result = TripleStore()
    for triple in store:
        if not keep_sameas and triple.predicate == ns.SAME_AS:
            continue
        result.add(
            replace(
                triple,
                subject=rewrite(triple.subject),
                object=rewrite(triple.object),
            )
        )
    return result
