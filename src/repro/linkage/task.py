"""The linkage benchmark task: two perturbed snapshots of one world.

E10's workload simulates linking two knowledge resources that describe the
same underlying entities — a second KB whose names carry noise (typos,
suffix variants, token reorderings), whose facts are partially missing, and
whose identifiers share nothing with the first.  The gold matching is the
identity correspondence the generator records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..kb import Entity, Triple, TripleStore, ns, string_literal
from ..world import World
from .blocking import Pair
from .records import EntityRecord, records_from_store


@dataclass(slots=True)
class LinkageTask:
    """Two record collections plus the gold correspondence."""

    side_a: dict[Entity, EntityRecord] = field(default_factory=dict)
    side_b: dict[Entity, EntityRecord] = field(default_factory=dict)
    gold: set[Pair] = field(default_factory=set)


def perturb_name(name: str, rng: random.Random, noise: float) -> str:
    """Apply name noise: typo, token swap, suffix change, or abbreviation."""
    result = name
    if rng.random() < noise:
        # Character typo: swap two adjacent interior characters.
        if len(result) > 4:
            i = rng.randrange(1, len(result) - 2)
            result = result[:i] + result[i + 1] + result[i] + result[i + 2:]
    if rng.random() < noise:
        tokens = result.split()
        if len(tokens) >= 2 and rng.random() < 0.5:
            tokens = [tokens[-1] + ","] + tokens[:-1]   # "Adler, Viktor"
            result = " ".join(tokens)
        elif tokens and len(tokens[0]) > 1 and rng.random() < 0.5:
            tokens[0] = tokens[0][0] + "."              # "V. Adler"
            result = " ".join(tokens)
    if rng.random() < noise * 0.5:
        result = result + " Jr" if not result.endswith("Jr") else result
    return result


def make_linkage_task(
    world: World,
    seed: int = 31,
    name_noise: float = 0.3,
    fact_dropout: float = 0.3,
    entity_subset: Optional[float] = None,
) -> LinkageTask:
    """Build the two sides from one world.

    Side A is the clean store; side B re-namespaces every entity id,
    perturbs names with ``name_noise``, drops each fact with probability
    ``fact_dropout``, and (optionally) keeps only a random
    ``entity_subset`` fraction of entities.
    """
    rng = random.Random(seed)
    kept = set(world.all_entities())
    if entity_subset is not None:
        kept = {e for e in kept if rng.random() < entity_subset}

    remap: dict[Entity, Entity] = {
        e: Entity("b:" + e.local_name) for e in sorted(kept, key=lambda e: e.id)
    }

    store_a = TripleStore()
    store_b = TripleStore()
    for entity in sorted(kept, key=lambda e: e.id):
        name = world.name[entity]
        store_a.add(Triple(entity, ns.PREF_LABEL, string_literal(name)))
        noisy = perturb_name(name, rng, name_noise)
        store_b.add(Triple(remap[entity], ns.PREF_LABEL, string_literal(noisy)))
    for triple in world.facts:
        if triple.subject not in kept:
            continue
        store_a.add(triple)
        if rng.random() < fact_dropout:
            continue
        obj = triple.object
        if isinstance(obj, Entity):
            if obj not in kept:
                continue
            obj = remap[obj]
        store_b.add(Triple(remap[triple.subject], triple.predicate, obj))

    task = LinkageTask()
    task.side_a = records_from_store(store_a, label_lang=None)
    task.side_b = records_from_store(store_b, label_lang=None)
    task.gold = {
        (entity, remap[entity])
        for entity in kept
        if entity in task.side_a and remap[entity] in task.side_b
    }
    return task
