"""Entity linkage / record linkage (tutorial section 4)."""

from .strsim import (
    TfIdfCosine,
    edit_similarity,
    jaro,
    jaro_winkler,
    levenshtein,
    ngram_jaccard,
    strip_language_suffix,
)
from .records import EntityRecord, records_from_store
from .blocking import (
    BlockingResult,
    blocking_recall,
    default_keys,
    key_blocking,
    minhash_blocking,
    no_blocking,
    sorted_neighborhood,
)
from .matchers import (
    LogisticMatcher,
    ScoredPair,
    StringMatcher,
    greedy_one_to_one,
    pair_features,
)
from .graph_matcher import GraphMatcher, PropagationReport
from .cluster import cluster_matches, pair_prf, pairs_to_sameas
from .task import LinkageTask, make_linkage_task, perturb_name

__all__ = [
    "TfIdfCosine",
    "edit_similarity",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "ngram_jaccard",
    "strip_language_suffix",
    "EntityRecord",
    "records_from_store",
    "BlockingResult",
    "blocking_recall",
    "default_keys",
    "key_blocking",
    "minhash_blocking",
    "no_blocking",
    "sorted_neighborhood",
    "LogisticMatcher",
    "ScoredPair",
    "StringMatcher",
    "greedy_one_to_one",
    "pair_features",
    "GraphMatcher",
    "PropagationReport",
    "cluster_matches",
    "pair_prf",
    "pairs_to_sameas",
    "LinkageTask",
    "make_linkage_task",
    "perturb_name",
]
