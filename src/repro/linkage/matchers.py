"""Pairwise matchers: string threshold and learned logistic matcher.

The string matcher is the classic baseline: link when a name-similarity
score clears a threshold.  The learned matcher (statistical-learning family
of tutorial section 4) combines several string measures with attribute and
neighbourhood overlap features in a from-scratch logistic regression,
trained on labelled pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..kb import Entity
from ..ml.logreg import LogisticRegression
from .blocking import Pair
from .records import EntityRecord
from .strsim import TfIdfCosine, edit_similarity, jaro_winkler, ngram_jaccard


@dataclass(frozen=True, slots=True)
class ScoredPair:
    """A candidate pair with a match score in [0, 1]."""

    pair: Pair
    score: float


def pair_features(
    record_a: EntityRecord,
    record_b: EntityRecord,
    tfidf: TfIdfCosine,
) -> list[float]:
    """The feature vector of one record pair."""
    name_a, name_b = record_a.name, record_b.name
    values_a = record_a.attribute_values()
    values_b = record_b.attribute_values()
    value_overlap = (
        len(values_a & values_b) / len(values_a | values_b)
        if values_a or values_b
        else 0.0
    )
    neighbors_a = record_a.neighbor_name_set()
    neighbors_b = record_b.neighbor_name_set()
    neighbor_overlap = (
        len(neighbors_a & neighbors_b) / len(neighbors_a | neighbors_b)
        if neighbors_a or neighbors_b
        else 0.0
    )
    shared_attribute_keys = len(set(record_a.attributes) & set(record_b.attributes))
    return [
        jaro_winkler(name_a.lower(), name_b.lower()),
        edit_similarity(name_a.lower(), name_b.lower()),
        ngram_jaccard(name_a, name_b),
        tfidf.similarity(name_a, name_b),
        value_overlap,
        neighbor_overlap,
        float(shared_attribute_keys),
        abs(len(name_a) - len(name_b)) / max(len(name_a), len(name_b), 1),
    ]


class StringMatcher:
    """Link when Jaro-Winkler name similarity clears a threshold."""

    name = "string-threshold"

    def __init__(self, threshold: float = 0.9) -> None:
        self.threshold = threshold

    def score_pairs(
        self,
        pairs: Iterable[Pair],
        side_a: dict[Entity, EntityRecord],
        side_b: dict[Entity, EntityRecord],
    ) -> list[ScoredPair]:
        """Score every candidate pair by name similarity."""
        scored = []
        for a, b in pairs:
            record_a, record_b = side_a.get(a), side_b.get(b)
            if record_a is None or record_b is None:
                continue
            score = jaro_winkler(record_a.name.lower(), record_b.name.lower())
            scored.append(ScoredPair((a, b), score))
        return scored

    def match(
        self,
        pairs: Iterable[Pair],
        side_a: dict[Entity, EntityRecord],
        side_b: dict[Entity, EntityRecord],
    ) -> list[ScoredPair]:
        """One-to-one greedy matching above the threshold."""
        scored = self.score_pairs(pairs, side_a, side_b)
        return greedy_one_to_one(scored, self.threshold)


class LogisticMatcher:
    """A trained pairwise classifier over string + structural features."""

    name = "logistic-matcher"

    def __init__(self, threshold: float = 0.5, l2: float = 1e-3) -> None:
        self.threshold = threshold
        self._model = LogisticRegression(l2=l2)
        self._tfidf = TfIdfCosine()
        self._trained = False

    def train(
        self,
        labeled_pairs: Sequence[tuple[Pair, bool]],
        side_a: dict[Entity, EntityRecord],
        side_b: dict[Entity, EntityRecord],
    ) -> None:
        """Fit on labelled (pair, is-match) examples."""
        self._tfidf.fit(
            [r.name for r in side_a.values()] + [r.name for r in side_b.values()]
        )
        features = []
        labels = []
        for (a, b), is_match in labeled_pairs:
            record_a, record_b = side_a.get(a), side_b.get(b)
            if record_a is None or record_b is None:
                continue
            features.append(pair_features(record_a, record_b, self._tfidf))
            labels.append(1.0 if is_match else 0.0)
        if not features:
            raise ValueError("no usable training pairs")
        self._model.fit(np.asarray(features), np.asarray(labels))
        self._trained = True

    def score_pairs(
        self,
        pairs: Iterable[Pair],
        side_a: dict[Entity, EntityRecord],
        side_b: dict[Entity, EntityRecord],
    ) -> list[ScoredPair]:
        """Match probabilities for candidate pairs."""
        if not self._trained:
            raise RuntimeError("train() the matcher first")
        pair_list = [
            (a, b) for a, b in pairs if a in side_a and b in side_b
        ]
        if not pair_list:
            return []
        matrix = np.asarray(
            [
                pair_features(side_a[a], side_b[b], self._tfidf)
                for a, b in pair_list
            ]
        )
        probabilities = self._model.predict_proba(matrix)
        return [
            ScoredPair(pair, float(p)) for pair, p in zip(pair_list, probabilities)
        ]

    def match(
        self,
        pairs: Iterable[Pair],
        side_a: dict[Entity, EntityRecord],
        side_b: dict[Entity, EntityRecord],
    ) -> list[ScoredPair]:
        """One-to-one greedy matching above the probability threshold."""
        scored = self.score_pairs(pairs, side_a, side_b)
        return greedy_one_to_one(scored, self.threshold)


def greedy_one_to_one(scored: list[ScoredPair], threshold: float) -> list[ScoredPair]:
    """Highest-score-first one-to-one assignment above a threshold."""
    chosen: list[ScoredPair] = []
    used_a: set[Entity] = set()
    used_b: set[Entity] = set()
    for item in sorted(
        scored, key=lambda s: (-s.score, s.pair[0].id, s.pair[1].id)
    ):
        if item.score < threshold:
            break
        a, b = item.pair
        if a in used_a or b in used_b:
            continue
        used_a.add(a)
        used_b.add(b)
        chosen.append(item)
    return chosen
