"""Blocking: pruning the quadratic pair space before matching.

Web-scale record linkage cannot score all |A| x |B| pairs.  Three standard
strategies, all measured by E10's ablation (pairs considered vs recall of
the true matches):

* **key blocking** — records sharing a blocking key (first name token,
  character prefix) become candidates;
* **sorted neighbourhood** — records within a sliding window of the
  key-sorted order become candidates;
* **MinHash LSH** — signature collisions over name shingles (delegated to
  :mod:`repro.bigdata.minhash`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable

from ..kb import Entity
from ..bigdata.minhash import MinHasher, lsh_candidate_pairs, shingles
from .records import EntityRecord

#: A pair of entities from (side A, side B).
Pair = tuple[Entity, Entity]


@dataclass(slots=True)
class BlockingResult:
    """Candidate pairs plus accounting."""

    pairs: set[Pair]
    total_possible: int

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the full pair space pruned away."""
        if self.total_possible == 0:
            return 0.0
        return 1.0 - len(self.pairs) / self.total_possible

    def sorted_pairs(self) -> list[Pair]:
        """The candidate pairs in canonical (id, id) order.

        ``pairs`` is a set; anything that *iterates* the candidates — pair
        scoring, clustering, sampling — must go through this accessor so
        the downstream order never depends on ``PYTHONHASHSEED``.
        """
        return sorted(self.pairs, key=lambda p: (p[0].id, p[1].id))


def default_keys(record: EntityRecord) -> list[str]:
    """The default blocking keys: lowercased name tokens and a 3-prefix."""
    tokens = record.name.lower().split()
    keys = [f"tok:{t}" for t in tokens]
    if record.name:
        keys.append(f"pre:{record.name.lower()[:3]}")
    return keys


def no_blocking(
    side_a: dict[Entity, EntityRecord], side_b: dict[Entity, EntityRecord]
) -> BlockingResult:
    """The full cross product (the baseline blocking ablation)."""
    pairs = {(a, b) for a in side_a for b in side_b}
    return BlockingResult(pairs, len(side_a) * len(side_b))


def key_blocking(
    side_a: dict[Entity, EntityRecord],
    side_b: dict[Entity, EntityRecord],
    keys: Callable[[EntityRecord], list[str]] = default_keys,
) -> BlockingResult:
    """Pairs sharing at least one blocking key."""
    buckets_b: dict[str, list[Entity]] = defaultdict(list)
    for entity, record in side_b.items():
        for key in keys(record):
            buckets_b[key].append(entity)
    pairs: set[Pair] = set()
    for entity, record in side_a.items():
        for key in keys(record):
            for other in buckets_b.get(key, ()):
                pairs.add((entity, other))
    return BlockingResult(pairs, len(side_a) * len(side_b))


def sorted_neighborhood(
    side_a: dict[Entity, EntityRecord],
    side_b: dict[Entity, EntityRecord],
    window: int = 6,
) -> BlockingResult:
    """Sliding window over the merged name-sorted order."""
    if window < 1:
        raise ValueError("window must be at least 1")
    merged: list[tuple[str, Entity, bool]] = []
    for entity, record in side_a.items():
        merged.append((record.name.lower(), entity, True))
    for entity, record in side_b.items():
        merged.append((record.name.lower(), entity, False))
    merged.sort(key=lambda item: (item[0], item[1].id))
    pairs: set[Pair] = set()
    for i, (__, entity, from_a) in enumerate(merged):
        for j in range(i + 1, min(i + 1 + window, len(merged))):
            __, other, other_from_a = merged[j]
            if from_a == other_from_a:
                continue
            pair = (entity, other) if from_a else (other, entity)
            pairs.add(pair)
    return BlockingResult(pairs, len(side_a) * len(side_b))


def minhash_blocking(
    side_a: dict[Entity, EntityRecord],
    side_b: dict[Entity, EntityRecord],
    num_hashes: int = 64,
    bands: int = 16,
    shingle_size: int = 3,
) -> BlockingResult:
    """LSH collisions over name character shingles."""
    hasher = MinHasher(num_hashes=num_hashes)
    signatures = {}
    side_of = {}
    for side, records in (("a", side_a), ("b", side_b)):
        for entity, record in records.items():
            key = (side, entity)
            signatures[key] = hasher.signature(shingles(record.name, shingle_size))
            side_of[key] = side
    pairs: set[Pair] = set()
    for key1, key2 in lsh_candidate_pairs(signatures, bands=bands):
        if side_of[key1] == side_of[key2]:
            continue
        (sa, ea), (sb, eb) = sorted((key1, key2), key=lambda k: k[0])
        pairs.add((ea, eb))
    return BlockingResult(pairs, len(side_a) * len(side_b))


def blocking_recall(result: BlockingResult, gold_pairs: Iterable[Pair]) -> float:
    """Fraction of true matches that survive blocking."""
    gold = set(gold_pairs)
    if not gold:
        return 1.0
    return len(gold & result.pairs) / len(gold)
