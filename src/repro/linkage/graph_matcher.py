"""SiGMa-style graph matching: greedy propagation over the relation graph.

The graph-algorithm family of entity linkage (tutorial section 4): start
from high-confidence name matches, then repeatedly commit the best-scoring
candidate pair, where a pair's score combines name similarity with
*relational support* — how many of the two entities' relation-labelled
neighbours are already matched to each other.  Each committed match raises
the scores of its neighbours' candidate pairs, so confident matches pull
their neighbourhoods along (the same intuition as NED's coherence).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable

from ..kb import Entity
from .blocking import Pair
from .matchers import ScoredPair
from .records import EntityRecord
from .strsim import jaro_winkler


@dataclass(slots=True)
class PropagationReport:
    """How the propagation unfolded."""

    seed_matches: int = 0
    propagated_matches: int = 0
    rounds: int = 0


class GraphMatcher:
    """Greedy best-first matching with relational score propagation."""

    name = "graph-propagation"

    def __init__(
        self,
        name_weight: float = 0.6,
        structure_weight: float = 0.8,
        accept_threshold: float = 0.45,
        seed_threshold: float = 0.95,
    ) -> None:
        self.name_weight = name_weight
        self.structure_weight = structure_weight
        self.accept_threshold = accept_threshold
        self.seed_threshold = seed_threshold
        self.report = PropagationReport()

    def match(
        self,
        pairs: Iterable[Pair],
        side_a: dict[Entity, EntityRecord],
        side_b: dict[Entity, EntityRecord],
    ) -> list[ScoredPair]:
        """Run the propagation; returns the committed one-to-one matches."""
        candidates = [
            (a, b) for a, b in pairs if a in side_a and b in side_b
        ]
        name_sim = {
            (a, b): jaro_winkler(side_a[a].name.lower(), side_b[b].name.lower())
            for a, b in candidates
        }
        matched_a: dict[Entity, Entity] = {}
        matched_b: dict[Entity, Entity] = {}
        committed: list[ScoredPair] = []

        def structural_support(a: Entity, b: Entity) -> float:
            record_a, record_b = side_a[a], side_b[b]
            total = 0
            aligned = 0
            for relation, neighbors_a in record_a.neighbors.items():
                neighbors_b = record_b.neighbors.get(relation)
                if not neighbors_b:
                    continue
                for neighbor in neighbors_a:
                    total += 1
                    image = matched_a.get(neighbor)
                    if image is not None and image in neighbors_b:
                        aligned += 1
            if total == 0:
                return 0.0
            return aligned / total

        def score(a: Entity, b: Entity) -> float:
            return (
                self.name_weight * name_sim[(a, b)]
                + self.structure_weight * structural_support(a, b)
            )

        # Seed with near-exact name matches (committed greedily).
        seeds = sorted(
            (pair for pair in candidates if name_sim[pair] >= self.seed_threshold),
            key=lambda pair: (-name_sim[pair], pair[0].id, pair[1].id),
        )
        for a, b in seeds:
            if a in matched_a or b in matched_b:
                continue
            matched_a[a] = b
            matched_b[b] = a
            committed.append(ScoredPair((a, b), name_sim[(a, b)]))
            self.report.seed_matches += 1

        # Propagate: lazy max-heap of candidate scores, re-evaluated on pop
        # (scores only grow as matches accumulate, so stale entries are
        # safely re-pushed with their fresh value).
        heap: list[tuple[float, str, str, Pair]] = []
        for pair in candidates:
            a, b = pair
            if a in matched_a or b in matched_b:
                continue
            heapq.heappush(heap, (-score(a, b), a.id, b.id, pair))
        while heap:
            negative_score, __, __, pair = heapq.heappop(heap)
            a, b = pair
            if a in matched_a or b in matched_b:
                continue
            fresh = score(a, b)
            if fresh > -negative_score + 1e-12:
                heapq.heappush(heap, (-fresh, a.id, b.id, pair))
                continue
            if fresh < self.accept_threshold:
                break
            matched_a[a] = b
            matched_b[b] = a
            committed.append(ScoredPair(pair, fresh))
            self.report.propagated_matches += 1
            self.report.rounds += 1
        return committed
