"""From matched pairs to owl:sameAs clusters and evaluation."""

from __future__ import annotations

from typing import Iterable

from ..kb import Triple, TripleStore, ns
from ..kb.sameas import UnionFind
from ..eval.metrics import PRF, f1_score
from .blocking import Pair
from .matchers import ScoredPair


def pairs_to_sameas(matches: Iterable[ScoredPair]) -> TripleStore:
    """owl:sameAs triples (one per matched pair, with the match score)."""
    store = TripleStore()
    for match in matches:
        a, b = match.pair
        store.add(
            Triple(a, ns.SAME_AS, b, confidence=min(match.score, 1.0),
                   source="linkage")
        )
    return store


def cluster_matches(matches: Iterable[ScoredPair]) -> UnionFind:
    """The transitive closure of the matched pairs."""
    uf = UnionFind()
    for match in matches:
        uf.union(*match.pair)
    return uf


def pair_prf(predicted: Iterable[Pair], gold: Iterable[Pair]) -> PRF:
    """Precision/recall/F1 over unordered match pairs."""
    def normalize(pairs):
        return {tuple(sorted(p, key=lambda e: e.id)) for p in pairs}

    predicted_set = normalize(predicted)
    gold_set = normalize(gold)
    correct = len(predicted_set & gold_set)
    precision = correct / len(predicted_set) if predicted_set else 1.0
    recall = correct / len(gold_set) if gold_set else 1.0
    return PRF(precision, recall, f1_score(precision, recall))
