"""Entity records: the flattened view record linkage operates on.

Entity linkage between two knowledge resources compares *records*: an
entity's preferred name plus its attribute bag (relation -> surface values)
and its relational neighbourhood (relation -> neighbour entity ids).  This
module flattens a triple store into such records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..kb import Entity, Literal, Relation, TripleStore, ns


@dataclass(slots=True)
class EntityRecord:
    """One entity's linkage-relevant view."""

    entity: Entity
    name: str
    attributes: dict[str, set[str]] = field(default_factory=dict)
    neighbors: dict[str, set[Entity]] = field(default_factory=dict)
    neighbor_names: dict[str, set[str]] = field(default_factory=dict)

    def attribute_values(self) -> set[str]:
        """All attribute value strings (for quick overlap features)."""
        values: set[str] = set()
        for bucket in self.attributes.values():
            values |= bucket
        return values

    def neighbor_name_set(self) -> set[str]:
        """All neighbour names, lowercased (cross-source comparable)."""
        names: set[str] = set()
        for bucket in self.neighbor_names.values():
            names |= {n.lower() for n in bucket}
        return names


def records_from_store(
    store: TripleStore, label_lang: Optional[str] = "en"
) -> dict[Entity, EntityRecord]:
    """Flatten a store into records, one per labelled entity."""
    records: dict[Entity, EntityRecord] = {}

    def record_of(entity: Entity) -> EntityRecord:
        record = records.get(entity)
        if record is None:
            record = EntityRecord(entity, name="")
            records[entity] = record
        return record

    for triple in store:
        subject = triple.subject
        if not isinstance(subject, Entity):
            continue
        predicate = triple.predicate
        if predicate == ns.LABEL or predicate == ns.PREF_LABEL:
            obj = triple.object
            if isinstance(obj, Literal) and (
                predicate == ns.PREF_LABEL or label_lang is None or obj.lang == label_lang
            ):
                record = record_of(subject)
                if not record.name or predicate == ns.PREF_LABEL:
                    record.name = obj.value
            continue
        if predicate in (ns.TYPE, ns.SUBCLASS_OF):
            continue
        if not isinstance(predicate, Relation):
            continue
        record = record_of(subject)
        key = predicate.local_name
        obj = triple.object
        if isinstance(obj, Entity):
            record.neighbors.setdefault(key, set()).add(obj)
        elif isinstance(obj, Literal):
            record.attributes.setdefault(key, set()).add(obj.value)
    kept = {entity: record for entity, record in records.items() if record.name}
    # Resolve neighbour entity ids to their names (ids are source-local and
    # never comparable across KBs; names are).
    for record in kept.values():
        for relation, neighbors in record.neighbors.items():
            names = {
                kept[n].name for n in neighbors if n in kept and kept[n].name
            }
            if names:
                record.neighbor_names[relation] = names
    return kept
