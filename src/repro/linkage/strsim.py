"""String similarity measures for entity linkage, from scratch.

Record linkage (tutorial section 4) begins with string similarity between
names: edit distance for typos, Jaro-Winkler for name-shaped strings,
n-gram Jaccard for robustness to word order, and token-level TF-IDF cosine
for multi-word names.  All are implemented directly (no external library).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable


def levenshtein(a: str, b: str) -> int:
    """The classic edit distance (insert/delete/substitute, unit costs)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + cost, # substitution
                )
            )
        previous = current
    return previous[-1]


def edit_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance, in [0, 1]."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def jaro(a: str, b: str) -> float:
    """Jaro similarity."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len(a)
    matched_b = [False] * len(b)
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not matched_b[j] and b[j] == ch:
                matched_a[i] = matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, ch in enumerate(a):
        if not matched_a[i]:
            continue
        while not matched_b[j]:
            j += 1
        if ch != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    m = matches
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by the common prefix (up to 4 chars)."""
    base = jaro(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:4], b[:4]):
        if ch_a != ch_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def ngram_jaccard(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity of character n-gram sets (lowercased)."""
    grams_a = _ngrams(a.lower(), n)
    grams_b = _ngrams(b.lower(), n)
    if not grams_a and not grams_b:
        return 1.0
    if not grams_a or not grams_b:
        return 0.0
    return len(grams_a & grams_b) / len(grams_a | grams_b)


def _ngrams(text: str, n: int) -> set[str]:
    padded = f"^{text}$"
    if len(padded) < n:
        return {padded}
    return {padded[i:i + n] for i in range(len(padded) - n + 1)}


class TfIdfCosine:
    """Token-level TF-IDF cosine over a fitted name corpus."""

    def __init__(self) -> None:
        self._document_frequency: Counter = Counter()
        self._documents = 0

    def fit(self, names: Iterable[str]) -> "TfIdfCosine":
        """Learn document frequencies from a corpus of names."""
        for name in names:
            self._documents += 1
            for token in set(name.lower().split()):  # det: allow-unordered -- counter increments commute
                self._document_frequency[token] += 1
        return self

    def _vector(self, name: str) -> dict[str, float]:
        counts = Counter(name.lower().split())
        vector = {}
        for token, count in counts.items():
            df = self._document_frequency.get(token, 0)
            idf = math.log((self._documents + 1) / (df + 1)) + 1.0
            vector[token] = count * idf
        return vector

    def similarity(self, a: str, b: str) -> float:
        """Cosine of the two names' TF-IDF vectors."""
        if self._documents == 0:
            raise RuntimeError("fit() the corpus before computing similarities")
        va, vb = self._vector(a), self._vector(b)
        dot = sum(weight * vb.get(token, 0.0) for token, weight in va.items())
        norm_a = math.sqrt(sum(w * w for w in va.values()))
        norm_b = math.sqrt(sum(w * w for w in vb.values()))
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return dot / (norm_a * norm_b)


def strip_language_suffix(name: str) -> str:
    """Remove the pseudo-translation suffixes used by the synthetic wiki.

    The transliteration matcher uses this as its (imperfect) normalizer;
    it intentionally mirrors only part of the generator's transformation.
    """
    for suffix in ("en", "e", "o"):
        if name.endswith(suffix) and len(name) > len(suffix) + 2:
            return name[: -len(suffix)]
    return name
