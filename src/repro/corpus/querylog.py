"""A synthetic search-query log (the Biperpedia substrate).

Biperpedia (Gupta et al., PVLDB 2014 — reference [13] of the tutorial)
discovers class attributes from the patterns users type into a search
engine: "population of aldrenburg", "nimbus systems ceo", "viktor adler
birthplace".  Real query streams are proprietary, so this generator
renders one from the world: entity-attribute queries drawn from a per-
class gold attribute vocabulary (with frequency skew and misspellings),
mixed with navigational and noise queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..kb import Entity
from ..world import World
from ..world import schema as ws

#: Gold attribute vocabulary per class: the attributes users actually ask
#: about, with a relative popularity weight.
GOLD_ATTRIBUTES: dict[Entity, tuple[tuple[str, int], ...]] = {
    ws.PERSON: (
        ("age", 10), ("birthplace", 8), ("spouse", 6), ("net worth", 4),
        ("education", 3), ("height", 2),
    ),
    ws.COMPANY: (
        ("ceo", 10), ("headquarters", 8), ("revenue", 6), ("stock price", 5),
        ("founder", 4), ("employees", 3),
    ),
    ws.CITY: (
        ("population", 10), ("weather", 8), ("mayor", 4), ("elevation", 2),
    ),
    ws.COUNTRY: (
        ("capital", 10), ("population", 8), ("currency", 5), ("president", 4),
    ),
    ws.SMARTPHONE: (
        ("price", 10), ("release date", 7), ("battery life", 5), ("specs", 4),
    ),
}

#: Query templates: attribute-of-entity phrasings.
_ATTRIBUTE_TEMPLATES = ("{a} of {e}", "{e} {a}", "what is the {a} of {e}")

_NOISE_QUERIES = (
    "cheap flights", "weather tomorrow", "pasta recipe", "news today",
    "how to tie a tie", "movie times", "translate hello",
)


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """One logged query with its gold interpretation (None for noise)."""

    text: str
    entity: Entity | None
    attribute: str | None
    frequency: int


@dataclass(frozen=True, slots=True)
class QueryLogConfig:
    """Knobs of the log generator."""

    seed: int = 47
    queries_per_entity: int = 6
    noise_fraction: float = 0.2
    misspelling_rate: float = 0.08

    def __post_init__(self) -> None:
        if not 0.0 <= self.noise_fraction <= 1.0:
            raise ValueError("noise_fraction must be in [0, 1]")


@dataclass(slots=True)
class QueryLog:
    """The generated log."""

    records: list[QueryRecord] = field(default_factory=list)

    def texts(self) -> list[str]:
        """Every query text, expanded by frequency."""
        expanded = []
        for record in self.records:
            expanded.extend([record.text] * record.frequency)
        return expanded


def _misspell(text: str, rng: random.Random) -> str:
    if len(text) < 5:
        return text
    index = rng.randrange(1, len(text) - 2)
    if text[index] == " " or text[index + 1] == " ":
        return text
    return text[:index] + text[index + 1] + text[index] + text[index + 2:]


def generate_query_log(
    world: World, config: Optional[QueryLogConfig] = None
) -> QueryLog:
    """Render an attribute-query log from the world (deterministic)."""
    if config is None:
        config = QueryLogConfig()
    rng = random.Random(config.seed)
    log = QueryLog()
    class_members = {
        cls: world.entities_of_class(cls) for cls in GOLD_ATTRIBUTES
    }
    class_members[ws.PERSON] = world.people
    attribute_records = 0
    for cls, attributes in GOLD_ATTRIBUTES.items():
        members = class_members.get(cls) or []
        weights = [w for __, w in attributes]
        names = [a for a, __ in attributes]
        for entity in members:
            entity_name = world.name[entity].lower()
            for __unused in range(config.queries_per_entity):
                attribute = rng.choices(names, weights=weights, k=1)[0]
                template = rng.choice(_ATTRIBUTE_TEMPLATES)
                text = template.format(a=attribute, e=entity_name)
                if rng.random() < config.misspelling_rate:
                    text = _misspell(text, rng)
                log.records.append(
                    QueryRecord(
                        text=text,
                        entity=entity,
                        attribute=attribute,
                        frequency=rng.randint(1, 4),
                    )
                )
                attribute_records += 1
    noise_count = int(
        attribute_records * config.noise_fraction / (1 - config.noise_fraction)
    ) if config.noise_fraction < 1.0 else attribute_records
    for __unused in range(noise_count):
        log.records.append(
            QueryRecord(
                text=rng.choice(_NOISE_QUERIES),
                entity=None,
                attribute=None,
                frequency=rng.randint(1, 6),
            )
        )
    rng.shuffle(log.records)
    return log
