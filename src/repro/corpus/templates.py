"""Sentence templates that render world facts into text.

Each relation has several paraphrase variants with a *difficulty* tag:

* ``easy`` — canonical surface order; a hand-written seed pattern matches it.
* ``medium`` — inverted or passive phrasing; surface patterns miss it, a
  dependency-path extractor catches it.
* ``hard`` — the relation is only implied by a nominal ("the founder of"),
  which statistical methods with wider context windows pick up.

This split is what gives experiment E3 its expected precision/recall shape
across the extraction-method spectrum the tutorial surveys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kb import Relation
from ..world import schema as ws


@dataclass(frozen=True, slots=True)
class FactTemplate:
    """A sentence pattern with ``{s}``, ``{o}`` and optional ``{y}``/``{y2}`` slots."""

    pattern: str
    difficulty: str = "easy"
    needs_year: bool = False
    needs_span: bool = False

    def __post_init__(self) -> None:
        if self.difficulty not in ("easy", "medium", "hard"):
            raise ValueError(f"unknown difficulty: {self.difficulty!r}")
        if "{s}" not in self.pattern or "{o}" not in self.pattern:
            raise ValueError(f"template must contain {{s}} and {{o}}: {self.pattern!r}")


TEMPLATES: dict[Relation, tuple[FactTemplate, ...]] = {
    ws.BORN_IN: (
        FactTemplate("{s} was born in {o}."),
        FactTemplate("{s} was born in {o} in {y}.", needs_year=True),
        FactTemplate("{s} was born in the city of {o}.", difficulty="medium"),
        FactTemplate("{o} is the birthplace of {s}.", difficulty="medium"),
        FactTemplate("The birthplace of {s} is {o}.", difficulty="hard"),
    ),
    ws.DIED_IN: (
        FactTemplate("{s} died in {o}."),
        FactTemplate("{s} passed away in {o} in {y}.", difficulty="medium", needs_year=True),
    ),
    ws.FOUNDED: (
        FactTemplate("{s} founded {o}."),
        FactTemplate("{s} founded {o} in {y}.", needs_year=True),
        FactTemplate("{o} was founded by {s}.", difficulty="medium"),
        FactTemplate("{s} established {o} in {y}.", difficulty="medium", needs_year=True),
        FactTemplate("{s} is the founder of {o}.", difficulty="hard"),
    ),
    ws.CEO_OF: (
        FactTemplate("{s} is the CEO of {o}."),
        FactTemplate("{s} serves as chief executive of {o}.", difficulty="medium"),
        FactTemplate("{s} led {o} from {y} to {y2}.", difficulty="hard", needs_span=True),
    ),
    ws.WORKS_AT: (
        FactTemplate("{s} works at {o}."),
        FactTemplate("{s} joined {o} in {y}.", difficulty="medium", needs_year=True),
        FactTemplate("{s} has worked at {o} since {y}.", difficulty="medium", needs_year=True),
    ),
    ws.STUDIED_AT: (
        FactTemplate("{s} studied at {o}."),
        FactTemplate("{s} graduated from {o}."),
        FactTemplate("{s} earned a degree from {o} in {y}.", difficulty="medium", needs_year=True),
    ),
    ws.MARRIED_TO: (
        FactTemplate("{s} married {o}."),
        FactTemplate("{s} married {o} in {y}.", needs_year=True),
        FactTemplate("{s} is married to {o}.", difficulty="medium"),
        FactTemplate("{s} and {o} married in {y}.", difficulty="hard", needs_year=True),
    ),
    ws.WON_PRIZE: (
        FactTemplate("{s} won the {o}."),
        FactTemplate("{s} won the {o} in {y}.", needs_year=True),
        FactTemplate("{s} received the {o} in {y}.", difficulty="medium", needs_year=True),
        FactTemplate("The {o} was awarded to {s} in {y}.", difficulty="medium", needs_year=True),
    ),
    ws.WROTE: (
        FactTemplate("{s} wrote {o}."),
        FactTemplate("{o} was written by {s}.", difficulty="medium"),
        FactTemplate("{s} is the author of {o}.", difficulty="hard"),
    ),
    ws.RELEASED: (
        FactTemplate("{s} released the album {o}."),
        FactTemplate("{s} recorded {o}.", difficulty="medium"),
    ),
    ws.LOCATED_IN: (
        FactTemplate("{s} is a city in {o}."),
        FactTemplate("{s} is located in {o}."),
        FactTemplate("{s} lies in {o}.", difficulty="medium"),
    ),
    ws.CAPITAL_OF: (
        FactTemplate("{s} is the capital of {o}."),
        FactTemplate("The capital of {o} is {s}.", difficulty="medium"),
    ),
    ws.HEADQUARTERED_IN: (
        FactTemplate("{s} is headquartered in {o}."),
        FactTemplate("{s} is based in {o}."),
        FactTemplate("{s} has its headquarters in {o}.", difficulty="medium"),
    ),
    ws.CREATED_PRODUCT: (
        FactTemplate("{s} released the {o}."),
        FactTemplate("{s} launched the {o} in {y}.", needs_year=True),
        FactTemplate("{s} unveiled the {o}.", difficulty="medium"),
        FactTemplate("The {o} is made by {s}.", difficulty="medium"),
    ),
    ws.CITIZEN_OF: (
        FactTemplate("{s} is a citizen of {o}."),
        FactTemplate("{s} holds citizenship of {o}.", difficulty="medium"),
    ),
}

#: Sentences that mention two entities but express no KB relation.  They are
#: the negatives that keep extraction precision below 1 and give distant
#: supervision something to reject.
DISTRACTOR_PATTERNS: tuple[str, ...] = (
    "{s} met {o} at a conference.",
    "{s} gave a speech about {o}.",
    "{s} praised {o} in an interview.",
    "{s} visited {o} last summer.",
    "{s} wrote an essay mentioning {o}.",
    "{s} criticized {o} repeatedly.",
    "{s} was photographed near {o}.",
)

#: Class nouns used by Hearst-pattern and "is a" sentences (singular, plural).
CLASS_NOUNS: dict = {
    ws.SCIENTIST: ("scientist", "scientists"),
    ws.MUSICIAN: ("musician", "musicians"),
    ws.POLITICIAN: ("politician", "politicians"),
    ws.ENTREPRENEUR: ("entrepreneur", "entrepreneurs"),
    ws.ATHLETE: ("athlete", "athletes"),
    ws.WRITER: ("writer", "writers"),
    ws.COMPANY: ("company", "companies"),
    ws.UNIVERSITY: ("university", "universities"),
    ws.CITY: ("city", "cities"),
    ws.COUNTRY: ("country", "countries"),
    ws.SMARTPHONE: ("smartphone", "smartphones"),
    ws.BOOK: ("book", "books"),
    ws.ALBUM: ("album", "albums"),
    ws.PRIZE: ("prize", "prizes"),
}

#: Hearst-style patterns for class sentences ({c} = plural class noun,
#: {e...} = entity names).
HEARST_PATTERNS: tuple[str, ...] = (
    "{c} such as {e1}, {e2}, and {e3} shaped the era.",
    "Many {c}, including {e1} and {e2}, were active then.",
    "{e1}, {e2}, and other {c} attended the meeting.",
    "{e1} is a {c_sing}.",
    "{e1} was one of the best-known {c}.",
)


def templates_for(relation: Relation, max_difficulty: str = "hard"):
    """The templates of a relation up to a difficulty level."""
    order = {"easy": 0, "medium": 1, "hard": 2}
    if max_difficulty not in order:
        raise ValueError(f"unknown difficulty: {max_difficulty!r}")
    limit = order[max_difficulty]
    return tuple(
        t for t in TEMPLATES.get(relation, ()) if order[t.difficulty] <= limit
    )
