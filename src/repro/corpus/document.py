"""The document model: sentences with gold mention and fact annotations.

Every synthetic document carries its own ground truth — which character
spans mention which entity, and which facts (true or deliberately false)
each sentence expresses.  Extractors never see the gold annotations; the
evaluation harnesses do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..kb import Entity, Relation, Term


@dataclass(frozen=True, slots=True)
class GoldMention:
    """A character span of a sentence that denotes an entity."""

    start: int
    end: int
    entity: Entity
    surface: str

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"bad mention span [{self.start}, {self.end})")


@dataclass(frozen=True, slots=True)
class GoldFact:
    """A fact a sentence expresses; ``truthful`` is False for injected noise."""

    subject: Entity
    relation: Relation
    object: Term
    truthful: bool = True

    def spo(self) -> tuple[Entity, Relation, Term]:
        """The (s, p, o) key of the expressed fact."""
        return (self.subject, self.relation, self.object)


@dataclass(slots=True)
class Sentence:
    """One sentence with its gold annotations."""

    text: str
    mentions: list[GoldMention] = field(default_factory=list)
    facts: list[GoldFact] = field(default_factory=list)

    def mention_of(self, entity: Entity) -> Optional[GoldMention]:
        """The first gold mention of an entity in this sentence, if any."""
        for mention in self.mentions:
            if mention.entity == entity:
                return mention
        return None

    def entities(self) -> set[Entity]:
        """The entities mentioned in this sentence."""
        return {m.entity for m in self.mentions}


@dataclass(slots=True)
class Document:
    """A sequence of sentences, optionally entity-centric and timestamped."""

    doc_id: str
    sentences: list[Sentence] = field(default_factory=list)
    topic: Optional[Entity] = None
    year: Optional[int] = None

    @property
    def text(self) -> str:
        """The full document text (sentences joined with spaces)."""
        return " ".join(s.text for s in self.sentences)

    def all_mentions(self) -> Iterator[tuple[Sentence, GoldMention]]:
        """Every (sentence, mention) pair in order."""
        for sentence in self.sentences:
            for mention in sentence.mentions:
                yield sentence, mention

    def all_facts(self) -> Iterator[GoldFact]:
        """Every expressed fact in order (may repeat across sentences)."""
        for sentence in self.sentences:
            yield from sentence.facts

    def entities(self) -> set[Entity]:
        """The set of entities mentioned anywhere in the document."""
        found: set[Entity] = set()
        for sentence in self.sentences:
            found |= sentence.entities()
        return found


def corpus_gold_facts(documents: list[Document], truthful_only: bool = True) -> set:
    """The (s, p, o) keys of all facts expressed in a corpus."""
    keys = set()
    for document in documents:
        for fact in document.all_facts():
            if fact.truthful or not truthful_only:
                keys.add(fact.spo())
    return keys
