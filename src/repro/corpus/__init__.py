"""Corpus substrates: annotated documents, synthetic Wikipedia, social stream."""

from .document import Document, GoldFact, GoldMention, Sentence, corpus_gold_facts
from .synthesis import (
    CorpusConfig,
    class_sentences,
    corrupt_fact,
    distractor_sentence,
    render_fact_sentence,
    surface_form,
    synthesize,
)
from .templates import (
    CLASS_NOUNS,
    DISTRACTOR_PATTERNS,
    HEARST_PATTERNS,
    TEMPLATES,
    FactTemplate,
    templates_for,
)
from .wiki import Category, Wiki, WikiConfig, WikiPage, build_wiki
from .corpusfile import CorpusReader, open_corpus, write_corpus
from .social import Post, SocialConfig, SocialStream, generate_stream
from .querylog import (
    GOLD_ATTRIBUTES,
    QueryLog,
    QueryLogConfig,
    QueryRecord,
    generate_query_log,
)

__all__ = [
    "Document",
    "GoldFact",
    "GoldMention",
    "Sentence",
    "corpus_gold_facts",
    "CorpusConfig",
    "class_sentences",
    "corrupt_fact",
    "distractor_sentence",
    "render_fact_sentence",
    "surface_form",
    "synthesize",
    "CLASS_NOUNS",
    "DISTRACTOR_PATTERNS",
    "HEARST_PATTERNS",
    "TEMPLATES",
    "FactTemplate",
    "templates_for",
    "Category",
    "Wiki",
    "WikiConfig",
    "WikiPage",
    "build_wiki",
    "CorpusReader",
    "open_corpus",
    "write_corpus",
    "Post",
    "SocialConfig",
    "SocialStream",
    "generate_stream",
    "GOLD_ATTRIBUTES",
    "QueryLog",
    "QueryLogConfig",
    "QueryRecord",
    "generate_query_log",
]
