"""A synthetic social-media stream about rival product families.

The tutorial's motivating big-data application (section 4) is tracking and
comparing two entities in social media over an extended timespan — "the
Apple iPhone vs Samsung Galaxy families".  This generator produces a
timestamped stream of short posts about the world's product families with:

* controlled monthly volume trends per family (a rise around each release),
* sentiment words with a per-family bias that drifts over time,
* ambiguous mentions ("Nova" may be any generation of the Nova family),

plus gold labels (which product, which family, which sentiment) so the
tracking application (E12) can be scored.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..kb import Entity
from ..world import World
from ..world import schema as ws

POSITIVE_PHRASES = (
    "love my new {p}",
    "the {p} camera is amazing",
    "finally upgraded to the {p}, totally worth it",
    "best phone I ever had, the {p} just works",
    "the {p} battery lasts forever",
)
NEGATIVE_PHRASES = (
    "my {p} keeps overheating",
    "the {p} screen cracked after a week",
    "regretting the {p}, so slow",
    "the {p} battery dies by noon",
    "{p} update broke everything",
)
NEUTRAL_PHRASES = (
    "just saw an ad for the {p}",
    "is the {p} worth it?",
    "comparing the {p} with its rivals",
    "store had the {p} on display",
)


@dataclass(frozen=True, slots=True)
class Post:
    """One social-media post with gold labels."""

    post_id: str
    text: str
    month: int
    product: Entity
    family: str
    surface: str
    sentiment: str  # "pos" | "neg" | "neu"


@dataclass(frozen=True, slots=True)
class SocialConfig:
    """Knobs of the stream generator."""

    seed: int = 23
    months: int = 24
    base_posts_per_month: int = 30
    release_boost: int = 40
    p_family_alias: float = 0.45
    start_year: Optional[int] = None  # None: align to the earliest release

    def __post_init__(self) -> None:
        if self.months < 1:
            raise ValueError("months must be positive")


@dataclass(slots=True)
class SocialStream:
    """The generated stream plus its gold per-family trend."""

    posts: list[Post] = field(default_factory=list)
    families: list[str] = field(default_factory=list)
    gold_volume: dict[str, list[int]] = field(default_factory=dict)
    gold_sentiment: dict[str, list[float]] = field(default_factory=dict)
    start_year: int = 0


def generate_stream(
    world: World, config: Optional[SocialConfig] = None
) -> SocialStream:
    """Generate a timestamped post stream about the world's product families."""
    if config is None:
        config = SocialConfig()
    rng = random.Random(config.seed)
    families: dict[str, list[Entity]] = {}
    for product in world.products:
        families.setdefault(world.product_family[product], []).append(product)
    if not families:
        raise ValueError("the world has no products; enable product generation")

    release_years = [
        int(lit.value)
        for product in world.products
        for lit in [world.facts.one_object(product, ws.RELEASE_YEAR)]
        if lit is not None
    ]
    start_year = (
        config.start_year
        if config.start_year is not None
        else (min(release_years) if release_years else 2012)
    )
    stream = SocialStream(families=sorted(families), start_year=start_year)
    for family in stream.families:
        stream.gold_volume[family] = [0] * config.months
        stream.gold_sentiment[family] = [0.0] * config.months

    release_month: dict[Entity, int] = {}
    for family, products in families.items():
        for product in products:
            year_literal = world.facts.one_object(product, ws.RELEASE_YEAR)
            if year_literal is None:
                continue
            month = (int(year_literal.value) - start_year) * 12 + rng.randint(0, 11)
            if 0 <= month < config.months:
                release_month[product] = month

    post_counter = 0
    sentiment_sums: dict[str, list[float]] = {
        family: [0.0] * config.months for family in stream.families
    }
    for month in range(config.months):
        for family_index, family in enumerate(stream.families):
            products = families[family]
            volume = config.base_posts_per_month
            for product in products:
                released = release_month.get(product)
                if released is not None and 0 <= month - released < 3:
                    volume += config.release_boost // (1 + month - released)
            # A slow sentiment drift that differs per family, so the tracked
            # series have a shape worth comparing.
            drift = 0.25 * (1 if family_index % 2 == 0 else -1) * (month / config.months)
            base_positive = 0.45 + drift
            for __ in range(volume):
                available = [p for p in products
                             if release_month.get(p, -1) <= month]
                pool = available or products
                # Chatter skews heavily toward the newest released
                # generation — the regularity the KB-backed resolver exploits.
                newest = max(pool, key=lambda p: release_month.get(p, -1))
                weights = [4 if p == newest else 1 for p in pool]
                product = rng.choices(pool, weights=weights, k=1)[0]
                roll = rng.random()
                if roll < base_positive:
                    sentiment, phrases = "pos", POSITIVE_PHRASES
                elif roll < base_positive + 0.3:
                    sentiment, phrases = "neg", NEGATIVE_PHRASES
                else:
                    sentiment, phrases = "neu", NEUTRAL_PHRASES
                if rng.random() < config.p_family_alias:
                    surface = family
                else:
                    surface = world.name[product]
                text = rng.choice(phrases).format(p=surface)
                stream.posts.append(
                    Post(
                        post_id=f"post_{post_counter:06d}",
                        text=text,
                        month=month,
                        product=product,
                        family=family,
                        surface=surface,
                        sentiment=sentiment,
                    )
                )
                post_counter += 1
                stream.gold_volume[family][month] += 1
                sentiment_sums[family][month] += (
                    1.0 if sentiment == "pos" else -1.0 if sentiment == "neg" else 0.0
                )
    for family in stream.families:
        for month in range(config.months):
            count = stream.gold_volume[family][month]
            stream.gold_sentiment[family][month] = (
                sentiment_sums[family][month] / count if count else 0.0
            )
    rng.shuffle(stream.posts)
    return stream
