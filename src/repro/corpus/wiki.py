"""A synthetic Wikipedia: pages with infoboxes, categories, and links.

Wikipedia-based knowledge harvesting (tutorial section 2) consumes page
*structure*, not just text: infobox attributes (DBpedia), the category
system (WikiTaxonomy, YAGO), page links (used for NED coherence), and
interlanguage links (multilingual knowledge).  This module generates all of
those from the ground-truth world, together with gold labels:

* each category carries a gold flag — *conceptual* (defines an isA class)
  vs *administrative/topical* — which is what E1 evaluates against;
* each infobox row carries the gold fact it encodes;
* interlanguage links are pseudo-translations with configurable dropout,
  which E8 evaluates against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..kb import Entity, Literal, Relation, Term
from ..world import World, nationality_adjective
from ..world import schema as ws
from .document import Document
from .synthesis import render_fact_sentence
from .templates import CLASS_NOUNS, TEMPLATES, templates_for


@dataclass(frozen=True, slots=True)
class Category:
    """A category label plus the gold answer category classification."""

    name: str
    conceptual: bool
    target_class: Optional[Entity] = None


@dataclass(slots=True)
class WikiPage:
    """One encyclopedia page about an entity."""

    title: str
    entity: Entity
    document: Document
    infobox: dict[str, str] = field(default_factory=dict)
    infobox_gold: dict[str, tuple[Relation, Term]] = field(default_factory=dict)
    categories: list[Category] = field(default_factory=list)
    links: list[str] = field(default_factory=list)
    interlanguage: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class Wiki:
    """The whole synthetic encyclopedia."""

    pages: dict[str, WikiPage] = field(default_factory=dict)
    by_entity: dict[Entity, str] = field(default_factory=dict)

    def page_of(self, entity: Entity) -> Optional[WikiPage]:
        """The page describing an entity, if one exists."""
        title = self.by_entity.get(entity)
        return self.pages.get(title) if title else None

    def link_graph(self) -> dict[str, set[str]]:
        """Title -> set of linked titles (only links to existing pages)."""
        return {
            title: {t for t in page.links if t in self.pages}
            for title, page in self.pages.items()
        }


@dataclass(frozen=True, slots=True)
class WikiConfig:
    """Knobs of the encyclopedia generator."""

    seed: int = 11
    interlanguage_dropout: float = 0.2
    sentences_per_page: int = 6
    p_short_alias: float = 0.15
    #: Per-language dropout overrides, e.g. ``(("es", 0.9),)`` — languages
    #: not listed keep ``interlanguage_dropout``.  A tuple of pairs (not a
    #: dict) so the config stays hashable; the multilingual_skew scenario
    #: uses this to starve one language edition of labels.
    interlanguage_dropout_by_lang: Optional[tuple[tuple[str, float], ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.interlanguage_dropout <= 1.0:
            raise ValueError("interlanguage_dropout must be in [0, 1]")
        for lang, dropout in self.interlanguage_dropout_by_lang or ():
            if not 0.0 <= dropout <= 1.0:
                raise ValueError(
                    f"interlanguage dropout for {lang!r} must be in [0, 1]"
                )


#: Infobox attribute name per relation, by subject class.
_PERSON_INFOBOX = {
    "born": ws.BORN_IN,
    "birth_date": ws.BIRTH_YEAR,
    "death_date": ws.DEATH_YEAR,
    "spouse": ws.MARRIED_TO,
    "alma_mater": ws.STUDIED_AT,
    "employer": ws.WORKS_AT,
    "awards": ws.WON_PRIZE,
}
_COMPANY_INFOBOX = {
    "headquarters": ws.HEADQUARTERED_IN,
    "founded": ws.FOUNDING_YEAR,
    "products": ws.CREATED_PRODUCT,
}
_CITY_INFOBOX = {
    "country": ws.LOCATED_IN,
    "population": ws.POPULATION,
}
_PRODUCT_INFOBOX = {
    "release_year": ws.RELEASE_YEAR,
    "predecessor": ws.SUCCESSOR_OF,
}


def build_wiki(world: World, config: Optional[WikiConfig] = None) -> Wiki:
    """Generate the synthetic encyclopedia for a world."""
    if config is None:
        config = WikiConfig()
    rng = random.Random(config.seed)
    wiki = Wiki()
    for entity in world.all_entities():
        page = _build_page(world, entity, config, rng)
        if page.title in wiki.pages:
            continue
        wiki.pages[page.title] = page
        wiki.by_entity[entity] = page.title
    # Links can only be resolved once all titles exist.
    for page in wiki.pages.values():
        _add_links(world, wiki, page)
    return wiki


def _build_page(world, entity, config, rng) -> WikiPage:
    title = world.name[entity]
    sentences = []
    facts = [t for t in world.facts.match(subject=entity) if t.predicate in TEMPLATES]
    rng.shuffle(facts)
    for fact in facts[: config.sentences_per_page]:
        available = templates_for(fact.predicate, "hard")
        if not available:
            continue
        template = rng.choice(available)
        sentences.append(
            render_fact_sentence(world, fact, template, rng, config.p_short_alias)
        )
    document = Document(f"wiki_{entity.local_name}", sentences=sentences, topic=entity)
    page = WikiPage(title=title, entity=entity, document=document)
    _add_infobox(world, page)
    _add_categories(world, page, rng)
    _add_interlanguage(world, page, config, rng)
    return page


def _add_infobox(world: World, page: WikiPage) -> None:
    entity = page.entity
    cls = world.primary_class.get(entity)
    if entity in world.people:
        mapping = _PERSON_INFOBOX
    elif cls == ws.COMPANY:
        mapping = _COMPANY_INFOBOX
    elif cls == ws.CITY:
        mapping = _CITY_INFOBOX
    elif entity in world.products:
        mapping = _PRODUCT_INFOBOX
    else:
        return
    for attribute, relation in mapping.items():
        triple = None
        for candidate in world.facts.match(subject=entity, predicate=relation):
            triple = candidate
            break
        if triple is None:
            continue
        obj = triple.object
        if isinstance(obj, Entity):
            value = world.name[obj]
        elif isinstance(obj, Literal):
            value = obj.value
        else:
            continue
        page.infobox[attribute] = value
        page.infobox_gold[attribute] = (relation, obj)


def _add_categories(world: World, page: WikiPage, rng: random.Random) -> None:
    entity = page.entity
    categories: list[Category] = []
    if entity in world.people:
        occupation = world.primary_class.get(entity, ws.PERSON)
        __, plural = CLASS_NOUNS.get(occupation, ("person", "people"))
        country = world.facts.one_object(entity, ws.CITIZEN_OF)
        if country is not None:
            demonym = nationality_adjective(world.name[country])
            categories.append(
                Category(f"{demonym} {plural}", conceptual=True, target_class=occupation)
            )
        birth_year = world.facts.one_object(entity, ws.BIRTH_YEAR)
        if birth_year is not None:
            categories.append(Category(f"{birth_year.value} births", conceptual=False))
        death_year = world.facts.one_object(entity, ws.DEATH_YEAR)
        if death_year is not None:
            categories.append(Category(f"{death_year.value} deaths", conceptual=False))
        city = world.facts.one_object(entity, ws.BORN_IN)
        if city is not None:
            categories.append(
                Category(
                    f"People from {world.name[city]}",
                    conceptual=True,
                    target_class=ws.PERSON,
                )
            )
    elif world.primary_class.get(entity) == ws.COMPANY:
        founding = world.facts.one_object(entity, ws.FOUNDING_YEAR)
        if founding is not None:
            categories.append(
                Category(
                    f"Companies established in {founding.value}",
                    conceptual=True,
                    target_class=ws.COMPANY,
                )
            )
        city = world.facts.one_object(entity, ws.HEADQUARTERED_IN)
        if city is not None:
            country = world.facts.one_object(city, ws.LOCATED_IN)
            if country is not None:
                categories.append(
                    Category(
                        f"Companies of {world.name[country]}",
                        conceptual=True,
                        target_class=ws.COMPANY,
                    )
                )
    elif world.primary_class.get(entity) == ws.CITY:
        country = world.facts.one_object(entity, ws.LOCATED_IN)
        if country is not None:
            categories.append(
                Category(
                    f"Cities in {world.name[country]}",
                    conceptual=True,
                    target_class=ws.CITY,
                )
            )
    elif world.primary_class.get(entity) == ws.COUNTRY:
        categories.append(Category(f"History of {world.name[entity]}", conceptual=False))
        categories.append(Category(f"Economy of {world.name[entity]}", conceptual=False))
    elif world.primary_class.get(entity) == ws.UNIVERSITY:
        city = world.facts.one_object(entity, ws.HEADQUARTERED_IN)
        country = (
            world.facts.one_object(city, ws.LOCATED_IN) if city is not None else None
        )
        if country is not None:
            categories.append(
                Category(
                    f"Universities in {world.name[country]}",
                    conceptual=True,
                    target_class=ws.UNIVERSITY,
                )
            )
    elif world.primary_class.get(entity) == ws.BOOK:
        author = None
        for triple in world.facts.match(predicate=ws.WROTE, obj=entity):
            author = triple.subject
            break
        if author is not None:
            categories.append(
                Category(
                    f"Books by {world.name[author]}",
                    conceptual=True,
                    target_class=ws.BOOK,
                )
            )
    elif world.primary_class.get(entity) == ws.ALBUM:
        artist = None
        for triple in world.facts.match(predicate=ws.RELEASED, obj=entity):
            artist = triple.subject
            break
        if artist is not None:
            categories.append(
                Category(
                    f"Albums by {world.name[artist]}",
                    conceptual=True,
                    target_class=ws.ALBUM,
                )
            )
    elif world.primary_class.get(entity) == ws.PRIZE:
        categories.append(
            Category("Science awards", conceptual=True, target_class=ws.PRIZE)
        )
    elif entity in world.products:
        maker = None
        for triple in world.facts.match(predicate=ws.CREATED_PRODUCT, obj=entity):
            maker = triple.subject
            break
        if maker is not None:
            categories.append(
                Category(
                    f"{world.name[maker]} products",
                    conceptual=True,
                    target_class=ws.PRODUCT,
                )
            )
    if rng.random() < 0.15:
        categories.append(Category("Articles needing cleanup", conceptual=False))
    page.categories = categories


def _add_interlanguage(world, page, config, rng) -> None:
    overrides = dict(config.interlanguage_dropout_by_lang or ())
    for lang in ("de", "fr", "es"):
        # One rng draw per language regardless of overrides, so wikis built
        # without overrides keep their exact pre-override bytes.
        if rng.random() < overrides.get(lang, config.interlanguage_dropout):
            continue
        label = world.label_in(page.entity, lang)
        if label is not None:
            page.interlanguage[lang] = label


def _add_links(world: World, wiki: Wiki, page: WikiPage) -> None:
    neighbors: set[str] = set()
    for triple in world.facts.match(subject=page.entity):
        if isinstance(triple.object, Entity):
            title = wiki.by_entity.get(triple.object)
            if title:
                neighbors.add(title)
    for triple in world.facts.match(obj=page.entity):
        title = wiki.by_entity.get(triple.subject)
        if title:
            neighbors.add(title)
    neighbors.discard(page.title)
    page.links = sorted(neighbors)
