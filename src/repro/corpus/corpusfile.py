"""A byte-pinned, mmap-able corpus file: zero-copy page transport.

Process-backed builds used to ship the whole :class:`~repro.corpus.wiki.Wiki`
to every worker through ``initargs`` — a full pickle/fork payload per pool
spinup that grows linearly with the corpus.  This module gives the corpus
the same treatment PR 7 gave the KB: one immutable on-disk file, written
once by the parent, that workers mmap read-only and open pages from by
title.  The worker's startup payload shrinks to a path string; page bytes
are paged in lazily by the OS and shared between every worker on the host.

Format (single file, all integers little-endian)::

    header   magic "RPROCRP1", tag "pag", version, count, meta bytes, heap bytes
    meta     canonical JSON: format_version, counts, and the resolver
             catalog (title -> entity text, entity text -> title, aliases)
    offsets  (count + 1) x u64 into the heap
    heap     records sorted by title: title \\x00 page-payload JSON
    trailer  sha256 of everything above (32 raw bytes)

The record payload mirrors the incremental state's page records
(:func:`repro.pipeline.incremental._page_record`): only the
pipeline-visible content — entity, sentence texts, infobox, category
names, interlanguage labels.  Gold annotations and page links are
evaluation-only, so a page reconstructed from the file runs through the
extractors identically to the original; that is what keeps corpus-file
builds byte-identical to in-memory builds (asserted by the cross-mode
determinism matrix).

Like the segment files, the format is deterministic: writing the same
wiki + aliases twice yields byte-identical files (JSON with sorted keys,
records sorted by title, no timestamps), so a corpus file can be cached
across builds and verified by its sha256 alone.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from typing import Iterable, Optional

from .document import Document, Sentence
from .wiki import Category, Wiki, WikiPage
from ..kb.rdfio import term_from_text, term_to_text
from ..obs import core as _obs

CORPUS_MAGIC = b"RPROCRP1"
CORPUS_FORMAT_VERSION = 1

_HEADER = struct.Struct("<8s4sIQQQ")  # magic, tag, version, count, meta, heap
_U64 = struct.Struct("<Q")
_TAG = b"pag\x00"
_SHA256_BYTES = 32


def _page_payload(page: WikiPage) -> dict:
    """The pipeline-visible content of one page (gold/links excluded)."""
    return {
        "entity": term_to_text(page.entity),
        "sentences": [s.text for s in page.document.sentences],
        "infobox": dict(page.infobox),
        "categories": [c.name for c in page.categories],
        "interlanguage": dict(page.interlanguage),
    }


def _page_from_payload(title: str, payload: dict) -> WikiPage:
    return WikiPage(
        title=title,
        entity=term_from_text(payload["entity"]),
        document=Document(
            doc_id=f"corpus:{title}",
            sentences=[Sentence(text) for text in payload["sentences"]],
        ),
        infobox=dict(payload["infobox"]),
        categories=[
            Category(name, conceptual=False) for name in payload["categories"]
        ],
        interlanguage=dict(payload["interlanguage"]),
    )


def _canonical_json(value) -> bytes:
    return json.dumps(
        value, ensure_ascii=False, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def write_corpus(
    wiki: Wiki,
    path: str,
    aliases: Optional[dict] = None,
) -> dict:
    """Write a corpus file for ``wiki`` (+ alias registrations); return its
    manifest.

    Deterministic and atomic: the bytes are a pure function of the wiki
    content and alias map, and the file appears under ``path`` via a
    sibling ``.tmp`` + ``os.replace`` so a reader can never observe a
    half-written file (and existing read-only mmaps keep their old inode).
    """
    records: list[bytes] = []
    sentences = 0
    for title in sorted(wiki.pages):
        if "\x00" in title:
            raise ValueError(f"NUL byte in page title: {title!r}")
        page = wiki.pages[title]
        sentences += len(page.document.sentences)
        records.append(
            title.encode("utf-8")
            + b"\x00"
            + _canonical_json(_page_payload(page))
        )
    meta = {
        "format_version": CORPUS_FORMAT_VERSION,
        "pages": len(records),
        "sentences": sentences,
        # The resolver catalog: everything a worker needs to rebuild the
        # shared name resolver without the in-memory wiki (see
        # ``CorpusReader.catalog``).  Alias forms keep their input order;
        # resolution itself is registration-order independent.
        "titles": {
            title: term_to_text(page.entity)
            for title, page in wiki.pages.items()
        },
        "by_entity": {
            term_to_text(entity): title
            for entity, title in wiki.by_entity.items()
        },
        "aliases": [
            [term_to_text(entity), list(forms)]
            for entity, forms in (aliases or {}).items()
        ],
    }
    meta_blob = _canonical_json(meta)
    heap = b"".join(records)
    chunks = [
        _HEADER.pack(
            CORPUS_MAGIC,
            _TAG,
            CORPUS_FORMAT_VERSION,
            len(records),
            len(meta_blob),
            len(heap),
        ),
        meta_blob,
    ]
    offset = 0
    for record in records:
        chunks.append(_U64.pack(offset))
        offset += len(record)
    chunks.append(_U64.pack(offset))
    chunks.append(heap)
    body = b"".join(chunks)
    digest = hashlib.sha256(body).digest()
    blob = body + digest
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
    os.replace(tmp, path)
    if _obs.ENABLED:
        _obs.count("corpus.file.writes")
        _obs.observe("corpus.file.bytes", len(blob))
    return {
        "format_version": CORPUS_FORMAT_VERSION,
        "pages": len(records),
        "sentences": sentences,
        "bytes": len(blob),
        "sha256": digest.hex(),
    }


class CorpusReader:
    """A read-only mmap view over one corpus file.

    Safe to share across threads (reads are positional slices of an
    immutable mapping) and cheap to open after ``fork``: the OS page cache
    backs every reader of the same file with the same physical pages.
    """

    __slots__ = (
        "path",
        "count",
        "_file",
        "_mm",
        "_meta",
        "_offsets_at",
        "_heap_at",
        "_digest_at",
    )

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "rb")
        self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        header = _HEADER.unpack_from(self._mm, 0)
        magic, tag, version, count, meta_bytes, heap_bytes = header
        if magic != CORPUS_MAGIC or version != CORPUS_FORMAT_VERSION:
            raise ValueError(f"bad corpus header in {path}: {magic!r} v{version}")
        if tag != _TAG:
            raise ValueError(f"{path}: unexpected section tag {tag!r}")
        self.count = count
        meta_at = _HEADER.size
        self._offsets_at = meta_at + meta_bytes
        self._heap_at = self._offsets_at + (count + 1) * 8
        self._digest_at = self._heap_at + heap_bytes
        if len(self._mm) != self._digest_at + _SHA256_BYTES:
            raise ValueError(
                f"{path}: truncated ({len(self._mm)} != "
                f"{self._digest_at + _SHA256_BYTES} bytes)"
            )
        self._meta = json.loads(self._mm[meta_at:self._offsets_at])

    # ------------------------------------------------------------- access

    def __len__(self) -> int:
        return self.count

    @property
    def sentences(self) -> int:
        return self._meta["sentences"]

    def manifest(self) -> dict:
        """The file's identity: counts, size, and content sha256."""
        return {
            "format_version": self._meta["format_version"],
            "pages": self.count,
            "sentences": self._meta["sentences"],
            "bytes": self._digest_at + _SHA256_BYTES,
            "sha256": self._mm[self._digest_at:].hex(),
        }

    def verify(self) -> bool:
        """Recompute the content digest against the stored trailer."""
        digest = hashlib.sha256(self._mm[: self._digest_at]).digest()
        return digest == self._mm[self._digest_at:]

    def titles(self) -> list[str]:
        """Every page title, in record (sorted) order."""
        return sorted(self._meta["titles"])

    def matches(self, wiki: Wiki, aliases: Optional[dict] = None) -> bool:
        """Cheap identity check for reuse: does this file describe the
        same corpus surface as ``wiki`` + ``aliases``?

        Compares counts and the full resolver catalog (titles, entities,
        aliases) — everything that shapes worker-side name resolution —
        without touching the page heap.  Page *contents* are trusted: the
        format is deterministic, so a file whose catalog matches and that
        was written from the same corpus is byte-identical anyway.
        """
        if self.count != len(wiki.pages):
            return False
        if self._meta["titles"] != {
            title: term_to_text(page.entity)
            for title, page in wiki.pages.items()
        }:
            return False
        if self._meta["aliases"] != [
            [term_to_text(entity), list(forms)]
            for entity, forms in (aliases or {}).items()
        ]:
            return False
        return self._meta["sentences"] == sum(
            len(page.document.sentences) for page in wiki.pages.values()
        )

    def catalog(self) -> tuple[dict, dict, list]:
        """The resolver catalog, iteration orders preserved from the wiki:
        (title -> entity term, entity term -> title, [(entity term,
        [alias form, ...]), ...])."""
        titles = {
            title: term_from_text(text)
            for title, text in self._meta["titles"].items()
        }
        by_entity = {
            term_from_text(text): title
            for text, title in self._meta["by_entity"].items()
        }
        aliases = [
            (term_from_text(text), list(forms))
            for text, forms in self._meta["aliases"]
        ]
        return titles, by_entity, aliases

    # ------------------------------------------------------------ records

    def _offset(self, i: int) -> int:
        return _U64.unpack_from(self._mm, self._offsets_at + i * 8)[0]

    def _record(self, i: int) -> bytes:
        lo = self._heap_at + self._offset(i)
        hi = self._heap_at + self._offset(i + 1)
        return self._mm[lo:hi]

    def _lower_bound(self, needle: bytes) -> int:
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            if self._record(mid) < needle:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def page(self, title: str) -> WikiPage:
        """Load one page by title (binary search over the sorted heap)."""
        needle = title.encode("utf-8") + b"\x00"
        index = self._lower_bound(needle)
        if index < self.count:
            record = self._record(index)
            if record.startswith(needle):
                payload = json.loads(record[len(needle):])
                if _obs.ENABLED:
                    _obs.count("corpus.file.page_reads")
                return _page_from_payload(title, payload)
        raise KeyError(f"no page titled {title!r} in {self.path}")

    def pages(self) -> Iterable[WikiPage]:
        """Iterate every page in title order."""
        for i in range(self.count):
            record = self._record(i)
            title, payload = record.split(b"\x00", 1)
            yield _page_from_payload(title.decode("utf-8"), json.loads(payload))

    def close(self) -> None:
        self._mm.close()
        self._file.close()

    def __enter__(self) -> "CorpusReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# Per-process reader cache: worker initializers run once per (worker,
# map call), but the pool outlives calls — reopening (and re-parsing the
# meta catalog) on every call would waste the zero-copy win.  Keyed by
# path + inode identity so a rewritten file (``os.replace`` swaps the
# inode) is never served from a stale mapping.
_READERS: dict[str, tuple[tuple, CorpusReader]] = {}


def open_corpus(path: str) -> CorpusReader:
    """A process-cached reader for ``path`` (workers call this in their
    initializer; the mmap and parsed catalog are reused across calls)."""
    stat = os.stat(path)
    identity = (stat.st_ino, stat.st_size, stat.st_mtime_ns)
    cached = _READERS.get(path)
    if cached is not None and cached[0] == identity:
        return cached[1]
    # A stale reader (replaced file) is dropped, not closed: another
    # thread's extractor may still hold it, and its mmap pins the old
    # inode safely until the last reference goes away.
    reader = CorpusReader(path)
    _READERS[path] = (identity, reader)
    return reader
