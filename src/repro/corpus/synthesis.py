"""Rendering world facts into an annotated text corpus.

This module is the stand-in for the Web: it turns the ground-truth world
into documents whose sentences express facts through the paraphrase
templates, with three controlled noise sources:

* *false statements* — with probability ``p_false`` a sentence asserts a
  corrupted fact (object swapped within its class); these create exactly the
  functional/type conflicts consistency reasoning (E4) must clean up;
* *distractor sentences* — entity co-occurrences with no underlying relation,
  which cap the precision of naive co-occurrence extraction;
* *ambiguous surface forms* — with probability ``p_short_alias`` an entity is
  mentioned by a short, ambiguous alias (surname, family name), which is what
  makes NED (E9) non-trivial.

Every sentence carries gold mention spans and gold expressed-fact labels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..kb import Entity, Literal, Relation, Triple
from ..world import World
from ..world import schema as ws
from .document import Document, GoldFact, GoldMention, Sentence
from .templates import (
    CLASS_NOUNS,
    DISTRACTOR_PATTERNS,
    HEARST_PATTERNS,
    TEMPLATES,
    FactTemplate,
    templates_for,
)


@dataclass(frozen=True, slots=True)
class CorpusConfig:
    """Knobs of the corpus synthesizer."""

    seed: int = 7
    mentions_per_fact: float = 1.3
    p_false: float = 0.0
    p_cross_class: float = 0.4
    p_short_alias: float = 0.2
    distractor_fraction: float = 0.15
    document_size: int = 8
    max_difficulty: str = "hard"
    include_class_sentences: bool = False

    def __post_init__(self) -> None:
        if self.mentions_per_fact < 0:
            raise ValueError("mentions_per_fact must be non-negative")
        for name, value in (
            ("p_false", self.p_false),
            ("p_cross_class", self.p_cross_class),
            ("p_short_alias", self.p_short_alias),
            ("distractor_fraction", self.distractor_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.document_size < 1:
            raise ValueError("document_size must be at least 1")


def surface_form(world: World, entity: Entity, rng: random.Random, p_short: float) -> str:
    """Pick a surface form: the full name, or (sometimes) a shorter alias."""
    forms = world.aliases.get(entity) or [world.name[entity]]
    if len(forms) > 1 and rng.random() < p_short:
        return rng.choice(forms[1:])
    return forms[0]


def _render(
    template_pattern: str,
    slots: dict[str, tuple[Optional[Entity], str]],
) -> Sentence:
    """Fill a pattern whose ``{name}`` slots map to (entity-or-None, text)."""
    text_parts: list[str] = []
    mentions: list[GoldMention] = []
    cursor = 0
    remaining = template_pattern
    while True:
        brace = remaining.find("{")
        if brace < 0:
            text_parts.append(remaining)
            break
        close = remaining.find("}", brace)
        if close < 0:
            raise ValueError(f"unbalanced braces in template: {template_pattern!r}")
        literal_part = remaining[:brace]
        slot_name = remaining[brace + 1:close]
        if slot_name not in slots:
            raise KeyError(f"template slot {{{slot_name}}} has no value")
        entity, slot_text = slots[slot_name]
        text_parts.append(literal_part)
        cursor += len(literal_part)
        text_parts.append(slot_text)
        if entity is not None:
            mentions.append(
                GoldMention(cursor, cursor + len(slot_text), entity, slot_text)
            )
        cursor += len(slot_text)
        remaining = remaining[close + 1:]
    return Sentence("".join(text_parts), mentions=mentions)


def render_fact_sentence(
    world: World,
    fact: Triple,
    template: FactTemplate,
    rng: random.Random,
    p_short_alias: float = 0.0,
    truthful: bool = True,
) -> Sentence:
    """Render one fact through one template, with gold annotations."""
    subject = fact.subject
    obj = fact.object
    slots: dict[str, tuple[Optional[Entity], str]] = {
        "s": (subject, surface_form(world, subject, rng, p_short_alias)),
    }
    if isinstance(obj, Entity):
        slots["o"] = (obj, surface_form(world, obj, rng, p_short_alias))
    elif isinstance(obj, Literal):
        slots["o"] = (None, obj.value)
    else:
        raise TypeError(f"cannot render object {obj!r}")
    if template.needs_year:
        # ``is not None``, not truthiness: a present-but-zero ``begin`` is a
        # real gold year, and substituting a random one would silently
        # corrupt the temporal label the sentence carries.
        year = (
            fact.scope.begin
            if fact.scope and fact.scope.begin is not None
            else rng.randint(1950, 2014)
        )
        slots["y"] = (None, str(year))
    if template.needs_span:
        if fact.scope and fact.scope.begin is not None and fact.scope.end is not None:
            begin, end = fact.scope.begin, fact.scope.end
        else:
            begin = rng.randint(1950, 2000)
            end = begin + rng.randint(2, 14)
        slots["y"] = (None, str(begin))
        slots["y2"] = (None, str(end))
    sentence = _render(template.pattern, slots)
    sentence.facts.append(GoldFact(subject, fact.predicate, obj, truthful=truthful))
    return sentence


def corrupt_fact(
    world: World,
    fact: Triple,
    rng: random.Random,
    p_cross_class: float = 0.4,
) -> Optional[Triple]:
    """Swap the object for a wrong one, producing a false fact.

    With probability ``p_cross_class`` the replacement comes from a
    *different* class (the signature of a mis-resolved mention — caught by
    type constraints); otherwise it is a same-class sibling (caught only by
    functionality constraints, and only when the true fact is also seen).
    This mix is what gives consistency reasoning (E4) both constraint
    families to exercise.
    """
    obj = fact.object
    if not isinstance(obj, Entity):
        return None
    cls = world.primary_class.get(obj)
    if cls is None:
        return None
    if rng.random() < p_cross_class:
        pool = [
            e for e in world.all_entities()
            if e != obj and world.primary_class.get(e) != cls
        ]
    else:
        pool = [e for e in world.entities_of_class(cls) if e != obj]
    if not pool:
        return None
    replacement = rng.choice(pool)
    if world.fact_exists(fact.subject, fact.predicate, replacement):
        return None
    return Triple(fact.subject, fact.predicate, replacement, scope=fact.scope)


def distractor_sentence(world: World, rng: random.Random, p_short_alias: float) -> Sentence:
    """A two-entity sentence that expresses no KB relation.

    Raises :class:`ValueError` on a world with fewer than two entities —
    the resampling loop below could never terminate there.
    """
    entities = world.all_entities()
    if len(entities) < 2:
        raise ValueError("distractor sentences need at least two entities")
    a = rng.choice(entities)
    b = rng.choice(entities)
    while b == a:
        b = rng.choice(entities)
    pattern = rng.choice(DISTRACTOR_PATTERNS)
    slots = {
        "s": (a, surface_form(world, a, rng, p_short_alias)),
        "o": (b, surface_form(world, b, rng, p_short_alias)),
    }
    return _render(pattern, slots)


def class_sentences(world: World, rng: random.Random, per_class: int = 3) -> list[Sentence]:
    """Hearst-style sentences stating class memberships (for E1/taxonomy)."""
    sentences = []
    for cls, (singular, plural) in CLASS_NOUNS.items():
        members = world.entities_of_class(cls)
        if len(members) < 3:
            continue
        for __ in range(per_class):
            sample = rng.sample(members, 3)
            pattern = rng.choice(HEARST_PATTERNS)
            slots = {
                "c": (None, plural.capitalize() if pattern.startswith("{c}") else plural),
                "c_sing": (None, singular),
                "e1": (sample[0], world.name[sample[0]]),
                "e2": (sample[1], world.name[sample[1]]),
                "e3": (sample[2], world.name[sample[2]]),
            }
            needed = {
                name for name in ("c", "c_sing", "e1", "e2", "e3")
                if "{" + name + "}" in pattern
            }
            sentence = _render(pattern, {k: v for k, v in slots.items() if k in needed})
            for slot_name in ("e1", "e2", "e3"):
                if slot_name in needed:
                    sentence.facts.append(
                        GoldFact(slots[slot_name][0], Relation("rdf:type"), cls)
                    )
            sentences.append(sentence)
    return sentences


def synthesize(
    world: World, config: Optional[CorpusConfig] = None
) -> list[Document]:
    """Render the world into an annotated corpus of documents."""
    if config is None:
        config = CorpusConfig()
    rng = random.Random(config.seed)
    sentences_by_subject: dict[Entity, list[Sentence]] = {}

    def emit(subject: Entity, sentence: Sentence) -> None:
        sentences_by_subject.setdefault(subject, []).append(sentence)

    renderable = [f for f in world.facts if f.predicate in TEMPLATES]
    for fact in renderable:
        count = int(config.mentions_per_fact)
        if rng.random() < config.mentions_per_fact - count:
            count += 1
        available = templates_for(fact.predicate, config.max_difficulty)
        if not available:
            continue
        for __ in range(count):
            template = rng.choice(available)
            emit(
                fact.subject,
                render_fact_sentence(
                    world, fact, template, rng, config.p_short_alias, truthful=True
                ),
            )
        if config.p_false > 0 and rng.random() < config.p_false:
            corrupted = corrupt_fact(world, fact, rng, config.p_cross_class)
            if corrupted is not None:
                template = rng.choice(available)
                emit(
                    corrupted.subject,
                    render_fact_sentence(
                        world, corrupted, template, rng,
                        config.p_short_alias, truthful=False,
                    ),
                )

    total_fact_sentences = sum(len(v) for v in sentences_by_subject.values())
    n_distractors = int(total_fact_sentences * config.distractor_fraction)
    if len(world.all_entities()) < 2:
        n_distractors = 0  # no valid entity pair; skip rather than hang
    loose_sentences = [
        distractor_sentence(world, rng, config.p_short_alias)
        for __ in range(n_distractors)
    ]
    if config.include_class_sentences:
        loose_sentences.extend(class_sentences(world, rng))

    return _assemble_documents(sentences_by_subject, loose_sentences, config, rng)


def _assemble_documents(
    sentences_by_subject: dict[Entity, list[Sentence]],
    loose_sentences: list[Sentence],
    config: CorpusConfig,
    rng: random.Random,
) -> list[Document]:
    """Group sentences into entity-centric documents plus a mixed tail."""
    documents: list[Document] = []
    doc_counter = 0
    for subject in sorted(sentences_by_subject, key=lambda e: e.id):
        block = sentences_by_subject[subject]
        rng.shuffle(block)
        for start in range(0, len(block), config.document_size):
            chunk = block[start:start + config.document_size]
            documents.append(
                Document(f"doc_{doc_counter:05d}", sentences=chunk, topic=subject)
            )
            doc_counter += 1
    rng.shuffle(loose_sentences)
    for start in range(0, len(loose_sentences), config.document_size):
        chunk = loose_sentences[start:start + config.document_size]
        documents.append(Document(f"doc_{doc_counter:05d}", sentences=chunk))
        doc_counter += 1
    return documents
